// Package httpd implements the GDN-enabled HTTPD (paper §4): the web
// server that makes the GDN reachable from standard browsers. URLs
// embed the name of a package DSO; the server extracts the name, binds
// to the object through the Globe runtime, and renders listings or
// streams file contents.
//
// Two flavours exist, selected by Config.CacheObjects:
//
//   - the plain GDN-HTTPD binds ordinary client proxies, so every file
//     read travels to the nearest replica;
//   - the caching flavour (the paper's "the local representative that
//     is installed in the GDN-HTTPD during binding may act as a
//     replica for the DSO, in which case downloading a software
//     package is fast") installs a cache-protocol replica instead, so
//     repeated downloads are served from local state. The same
//     configuration with user credentials is the GDN-enabled proxy
//     server users run on their own machines.
//
// URL space:
//
//	/                      → redirect to /browse/
//	/browse/<dir>          → directory listing from the name service
//	/pkg/<name>            → package contents listing
//	/pkg/<name>/-/<file>   → file download ("/-/" separates the object
//	                         name from the file path, both of which
//	                         contain slashes)
//
// The handler is a standard net/http.Handler, so the daemon serves real
// browsers while tests and experiments drive it in-process; the virtual
// network cost of each request is reported in the X-GDN-Cost header.
package httpd

import (
	"errors"
	"fmt"
	"html/template"
	"net/http"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gdn/internal/core"
	"gdn/internal/gls"
	"gdn/internal/gns"
	"gdn/internal/ids"
	"gdn/internal/obs"
	"gdn/internal/pkgobj"
	"gdn/internal/repl"
	"gdn/internal/rpc"
	"gdn/internal/store"
	"gdn/internal/transport"
)

// Config assembles a GDN-enabled HTTPD.
type Config struct {
	// Runtime supplies binding; it must have both a resolver and a name
	// service.
	Runtime *core.Runtime
	// CacheObjects installs cache-protocol replicas instead of plain
	// proxies during binding.
	CacheObjects bool
	// Disp is the dispatcher for hosted cache replicas; required when
	// CacheObjects is set.
	Disp *core.Dispatcher
	// CacheParams tunes the cache subobjects (ttl, mode).
	CacheParams map[string]string
	// RegisterCaches also registers each cache replica in the location
	// service, making this HTTPD a replica other clients can find —
	// the paper's "may act as a replica" in full.
	RegisterCaches bool
	// LeaseTTL is the lifetime of this HTTPD's registration session
	// with the location service (RegisterCaches mode): every cache
	// registration is attached to one session, renewed by a single
	// batched heartbeat, so a killed proxy's caches vanish from
	// lookups within one TTL — exactly the liveness contract object
	// servers run under. 0 selects the default (30s); negative
	// disables leasing (permanent registrations, the pre-session
	// behaviour).
	LeaseTTL time.Duration
	// RenewEvery overrides the heartbeat cadence (default LeaseTTL/3);
	// negative disables the background loop (tests renew by hand with
	// RenewLeases).
	RenewEvery time.Duration
	// CacheBytes bounds the shared content store behind cache replicas
	// (caching mode only): chunks of dropped or expired state age out
	// least-recently-used first instead of vanishing, so a refill
	// fetches only what was actually evicted. 0 selects 256 MiB.
	CacheBytes int64
	// StateDir roots the cache's chunk store on disk (caching mode
	// only), so the proxy cache survives restarts: a rebooted HTTPD
	// re-indexes the chunks a previous process left and refills only
	// what it never had. "" keeps the cache in memory.
	StateDir string
	// ScrubEvery is the interval between background scrubbing passes
	// over a disk-backed cache. 0 selects a default; negative disables.
	ScrubEvery time.Duration
	// ScrubBytes bounds one scrubbing pass; 0 selects a default.
	ScrubBytes int64
	// Logf receives diagnostics; nil discards them.
	Logf func(string, ...any)
}

// Default scrubbing rate for disk-backed caches; see gos for the
// rationale.
const (
	defaultScrubEvery = 30 * time.Second
	defaultScrubBytes = 256 << 20
)

// defaultLeaseTTL matches the object servers' registration lifetime: a
// registered cache is a replica and lives under the same contract.
const defaultLeaseTTL = 30 * time.Second

// Stats counts served traffic for the experiments.
type Stats struct {
	// Requests served, by kind.
	Listings  int64
	Downloads int64
	Errors    int64
	// Ranges counts downloads answered 206 (a byte range, not the
	// whole file); they are included in Downloads too.
	Ranges int64
	// NotModified counts conditional requests answered 304.
	NotModified int64
	// BytesServed is payload bytes sent to HTTP clients.
	BytesServed int64
	// VirtualCost accumulates the Globe-side network cost of all
	// requests.
	VirtualCost time.Duration
}

// handlerStats is the live form of Stats: independent atomic counters,
// so concurrent downloads bump them without sharing a lock on the hot
// streaming path. Stats() assembles the exported snapshot view.
type handlerStats struct {
	listings    atomic.Int64
	downloads   atomic.Int64
	errors      atomic.Int64
	ranges      atomic.Int64
	notModified atomic.Int64
	bytesServed atomic.Int64
	virtualCost atomic.Int64 // nanoseconds
}

// Handler is the GDN-enabled HTTPD logic.
type Handler struct {
	cfg Config

	// chunks backs every cache replica this HTTPD hosts: one shared
	// LRU store, so content cached for one package survives that
	// package's state drops and is deduplicated across packages.
	// Disk-backed when Config.StateDir is set, so it also survives
	// restarts.
	chunks *store.Store
	// stopScrub halts the disk cache's background scrubber.
	stopScrub func()

	// sess is the registration session cache registrations attach to
	// (RegisterCaches mode with leasing); nil otherwise.
	sess *gls.ServerSession
	// stopRenew halts the session heartbeat loop.
	stopRenew func()

	mu       sync.Mutex
	bindings map[string]*binding

	stats handlerStats
}

// binding caches one bound object so repeated requests skip the
// location lookup.
type binding struct {
	name string
	stub *pkgobj.Stub
	// registered remembers a GLS registration to undo on Close.
	registered bool

	// modMu guards the cached package modification stamp, so serving
	// Last-Modified does not cost a replica invocation per download.
	modMu      sync.Mutex
	modStamp   time.Time
	modFetched time.Time
}

// modStampTTL bounds how stale a binding's cached Last-Modified may
// run. The ETag (fetched fresh per request) stays the precise
// validator; a date at most this stale is within ordinary HTTP
// Last-Modified semantics.
const modStampTTL = 10 * time.Second

// modified returns the binding's package modification stamp, cached.
// The zero time means the package carries no stamp.
func (h *Handler) modified(b *binding) time.Time {
	now := time.Now()
	b.modMu.Lock()
	defer b.modMu.Unlock()
	if !b.modFetched.IsZero() && now.Sub(b.modFetched) < modStampTTL {
		return b.modStamp
	}
	b.modStamp = time.Time{}
	if stamp, err := b.stub.GetMeta(pkgobj.MetaModified); err == nil && stamp != "" {
		if secs, perr := strconv.ParseInt(stamp, 10, 64); perr == nil {
			b.modStamp = time.Unix(secs, 0).UTC()
		}
	}
	h.addCost(b.stub.TakeCost())
	b.modFetched = now
	return b.modStamp
}

// New builds a handler.
func New(cfg Config) (*Handler, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("httpd: config needs a runtime")
	}
	if cfg.Runtime.Names() == nil {
		return nil, fmt.Errorf("httpd: runtime needs a name service")
	}
	if cfg.CacheObjects && cfg.Disp == nil {
		return nil, fmt.Errorf("httpd: caching mode needs a dispatcher")
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 256 << 20
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	h := &Handler{cfg: cfg, bindings: make(map[string]*binding)}
	if cfg.CacheObjects {
		if cfg.StateDir != "" {
			dir := filepath.Join(cfg.StateDir, "cache-chunks")
			chunks, err := store.Open(dir, store.WithCapacity(cfg.CacheBytes))
			if err != nil {
				return nil, fmt.Errorf("httpd: open disk cache: %w", err)
			}
			h.chunks = chunks
			if cfg.ScrubEvery >= 0 {
				every, bytes := cfg.ScrubEvery, cfg.ScrubBytes
				if every == 0 {
					every = defaultScrubEvery
				}
				if bytes == 0 {
					bytes = defaultScrubBytes
				}
				h.stopScrub = chunks.StartScrubber(every, bytes, func(bad []store.Ref) {
					for _, ref := range bad {
						cfg.Logf("httpd: scrub quarantined corrupt cache chunk %s", ref.Short())
					}
				})
			}
		} else {
			h.chunks = store.Mem(store.WithCapacity(cfg.CacheBytes))
		}
	}
	// A registering proxy is a replica server and leases like one: one
	// session covers every cache registration, and a single batched
	// renewal per heartbeat keeps them all alive — so a killed proxy's
	// caches age out of lookups within one TTL instead of lingering
	// forever (the old permanent-registration behaviour).
	if cfg.CacheObjects && cfg.RegisterCaches && cfg.LeaseTTL >= 0 {
		if cfg.Runtime.Resolver() == nil {
			return nil, fmt.Errorf("httpd: registering caches needs a location-service resolver")
		}
		ttl := cfg.LeaseTTL
		if ttl == 0 {
			ttl = defaultLeaseTTL
		}
		sess, _, err := cfg.Runtime.Resolver().OpenSession(cfg.Disp.Addr(), ttl)
		if err != nil {
			return nil, fmt.Errorf("httpd: open registration session: %w", err)
		}
		h.sess = sess
		every := cfg.RenewEvery
		if every == 0 {
			every = ttl / 3
		}
		if every > 0 {
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				t := time.NewTicker(every)
				defer t.Stop()
				for {
					select {
					case <-stop:
						return
					case <-t.C:
						h.RenewLeases()
					}
				}
			}()
			var once sync.Once
			h.stopRenew = func() { once.Do(func() { close(stop) }); <-done }
		}
	}
	return h, nil
}

// RenewLeases renews the registration session now. The background loop
// calls it on a ticker; tests call it directly.
func (h *Handler) RenewLeases() {
	if h.sess == nil {
		return
	}
	if _, err := h.sess.Renew(); err != nil {
		h.cfg.Logf("httpd: renew registration session: %v", err)
	}
}

// Chunks exposes the shared cache store (nil in non-caching mode);
// tests and experiments inspect it.
func (h *Handler) Chunks() *store.Store { return h.chunks }

// Stats snapshots the handler's counters. The snapshot is assembled
// from independent atomic loads: each field is exact, but a concurrent
// request may land between loads, so cross-field sums can be off by
// the requests in flight — the same guarantee the registry gives.
func (h *Handler) Stats() Stats {
	return Stats{
		Listings:    h.stats.listings.Load(),
		Downloads:   h.stats.downloads.Load(),
		Errors:      h.stats.errors.Load(),
		Ranges:      h.stats.ranges.Load(),
		NotModified: h.stats.notModified.Load(),
		BytesServed: h.stats.bytesServed.Load(),
		VirtualCost: time.Duration(h.stats.virtualCost.Load()),
	}
}

// Close releases all cached bindings, deregisters registered caches and
// ends the registration session — the orderly-shutdown path. A killed
// proxy skips all of this; its session simply ages out.
func (h *Handler) Close() error {
	if h.stopScrub != nil {
		h.stopScrub()
	}
	if h.stopRenew != nil {
		h.stopRenew()
	}
	h.mu.Lock()
	bindings := h.bindings
	h.bindings = make(map[string]*binding)
	if h.sess != nil {
		// The session close below expires every attached registration
		// in one round trip per subnode; per-binding deregistration
		// would just repeat that N times.
		for _, b := range bindings {
			b.registered = false
		}
	}
	h.mu.Unlock()
	for _, b := range bindings {
		h.releaseBinding(b)
	}
	if h.sess != nil {
		if _, err := h.sess.Close(); err != nil {
			h.cfg.Logf("httpd: close registration session: %v", err)
		}
	}
	return nil
}

func (h *Handler) releaseBinding(b *binding) {
	if b.registered {
		oid := b.stub.LR().OID()
		var err error
		if h.sess != nil {
			_, err = h.sess.Detach(oid)
		} else {
			_, err = h.cfg.Runtime.Resolver().Delete(oid, h.cfg.Disp.Addr())
		}
		if err != nil {
			h.cfg.Logf("httpd: deregister cache for %s: %v", b.name, err)
		}
	}
	b.stub.Close()
}

// addCost accumulates virtual network cost on the atomic counter.
func (h *Handler) addCost(d time.Duration) {
	if d != 0 {
		h.stats.virtualCost.Add(int64(d))
	}
}

// ServeHTTP implements http.Handler. Every request runs under a fresh
// trace: the root span covers the whole service time, and the trace
// context flows with the download path through the replication layer
// to whichever store finally walks the chunks — the edge → httpd →
// replica → store chain /debug/gdn/traces shows.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	span := obs.StartTrace("httpd " + r.Method + " " + r.URL.Path)
	sw := &statusWriter{ResponseWriter: w, started: func() {
		mTTFBSeconds.ObserveSince(start)
	}}
	defer func() {
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		requestClass(sw.status).Inc()
		mBytesServed.Add(sw.bytes)
		mRequestSeconds.ObserveSince(start)
		if sw.status >= 500 {
			span.SetError(fmt.Errorf("status %d", sw.status))
		}
		span.End()
	}()
	w = sw

	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		h.fail(w, http.StatusMethodNotAllowed, "only GET is supported")
		return
	}
	switch {
	case r.URL.Path == "/":
		http.Redirect(w, r, "/browse/", http.StatusFound)
	case strings.HasPrefix(r.URL.Path, "/browse/"):
		h.serveBrowse(w, strings.TrimPrefix(r.URL.Path, "/browse"))
	case strings.HasPrefix(r.URL.Path, "/pkg/"):
		h.servePackage(w, r, span.Context(), strings.TrimPrefix(r.URL.Path, "/pkg"))
	case r.URL.Path == "/search":
		h.serveSearch(w, r.URL.Query().Get("q"))
	default:
		h.fail(w, http.StatusNotFound, "unknown path; try /browse/")
	}
}

func (h *Handler) fail(w http.ResponseWriter, status int, msg string) {
	h.stats.errors.Add(1)
	http.Error(w, msg, status)
}

// splitObjectURL splits "/<object-name>[/-/<file-path>]".
func splitObjectURL(p string) (objectName, filePath string) {
	if i := strings.Index(p, "/-/"); i >= 0 {
		return p[:i], p[i+3:]
	}
	return p, ""
}

// bind returns a (cached) binding for an object name. In caching mode
// the binding hosts a cache replica filled from the nearest replica the
// location service returned.
func (h *Handler) bind(objectName string) (*binding, time.Duration, error) {
	h.mu.Lock()
	b, ok := h.bindings[objectName]
	h.mu.Unlock()
	if ok {
		return b, 0, nil
	}

	rt := h.cfg.Runtime
	var stub *pkgobj.Stub
	var cost time.Duration
	registered := false
	if h.cfg.CacheObjects {
		oid, nameCost, err := rt.Names().Resolve(objectName)
		if err != nil {
			return nil, nameCost, err
		}
		peers, lookupCost, err := rt.Resolver().Lookup(oid)
		cost = nameCost + lookupCost
		if err != nil {
			return nil, cost, err
		}
		lr, ca, err := rt.NewReplica(core.ReplicaSpec{
			OID:      oid,
			Impl:     pkgobj.Impl,
			Protocol: repl.Cache,
			Role:     repl.RoleCache,
			Params:   h.cfg.CacheParams,
			Peers:    peers,
			Store:    h.chunks,
		}, h.cfg.Disp)
		if err != nil {
			return nil, cost, err
		}
		if h.cfg.RegisterCaches {
			// Leased (attached to the proxy's registration session) when
			// leasing is on, permanent otherwise.
			var regCost time.Duration
			var regErr error
			if h.sess != nil {
				_, regCost, regErr = h.sess.Attach(oid, ca)
			} else {
				_, regCost, regErr = rt.Resolver().Insert(oid, ca)
			}
			if regErr != nil {
				h.cfg.Logf("httpd: register cache for %s: %v", objectName, regErr)
			} else {
				cost += regCost
				registered = true
			}
		}
		stub = pkgobj.NewStub(lr)
	} else {
		lr, bindCost, err := rt.BindName(objectName)
		cost = bindCost
		if err != nil {
			return nil, cost, err
		}
		stub = pkgobj.NewStub(lr)
	}

	b = &binding{name: objectName, stub: stub, registered: registered}
	h.mu.Lock()
	if existing, raced := h.bindings[objectName]; raced {
		h.mu.Unlock()
		h.releaseBinding(b)
		return existing, cost, nil
	}
	h.bindings[objectName] = b
	h.mu.Unlock()
	return b, cost, nil
}

// dropBinding forgets a binding whose object vanished.
func (h *Handler) dropBinding(objectName string) {
	h.mu.Lock()
	b, ok := h.bindings[objectName]
	delete(h.bindings, objectName)
	h.mu.Unlock()
	if ok {
		h.releaseBinding(b)
	}
}

var browseTemplate = template.Must(template.New("browse").Parse(`<!DOCTYPE html>
<html><head><title>GDN: {{.Dir}}</title></head>
<body>
<h1>Globe Distribution Network</h1>
<h2>Directory {{.Dir}}</h2>
<ul>
{{range .Entries}}<li><a href="{{.Href}}">{{.Name}}</a></li>
{{end}}</ul>
</body></html>
`))

type browseEntry struct {
	Name string
	Href string
}

func (h *Handler) serveBrowse(w http.ResponseWriter, dir string) {
	if dir == "" {
		dir = "/"
	}
	// One Entries round trip lists and classifies every child: the
	// parent's record set carries a package marker per object child, so
	// no per-child Resolve probes (whose virtual cost the old code also
	// forgot to count) are needed.
	children, cost, err := h.cfg.Runtime.Names().Entries(dir)
	h.addCost(cost)
	if err != nil {
		h.fail(w, http.StatusNotFound, fmt.Sprintf("directory %s: %v", dir, err))
		return
	}

	entries := make([]browseEntry, 0, len(children))
	for _, child := range children {
		full := path.Join(dir, child.Name)
		if child.Package {
			entries = append(entries, browseEntry{Name: child.Name, Href: "/pkg" + full})
		} else {
			entries = append(entries, browseEntry{Name: child.Name + "/", Href: "/browse" + full})
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("X-GDN-Cost", cost.String())
	h.stats.listings.Add(1)
	if err := browseTemplate.Execute(w, map[string]any{"Dir": dir, "Entries": entries}); err != nil {
		h.cfg.Logf("httpd: render browse %s: %v", dir, err)
	}
}

var listingTemplate = template.Must(template.New("pkg").Parse(`<!DOCTYPE html>
<html><head><title>GDN package {{.Name}}</title></head>
<body>
<h1>Package {{.Name}}</h1>
{{if .Description}}<p>{{.Description}}</p>{{end}}
<table>
<tr><th>File</th><th>Size</th><th>SHA-256</th></tr>
{{range .Files}}<tr><td><a href="{{.Href}}">{{.Path}}</a></td><td>{{.Size}}</td><td><code>{{.Digest}}</code></td></tr>
{{end}}</table>
</body></html>
`))

type listingFile struct {
	Path   string
	Href   string
	Size   int64
	Digest string
}

// notFound classifies a final failure as 404-shaped.
func notFound(err error) bool {
	return errors.Is(err, gns.ErrNotFound) || errors.Is(err, gls.ErrNotFound) ||
		strings.Contains(err.Error(), pkgobj.ErrNoFile.Error())
}

// retryable reports whether a fresh binding might cure a failure:
// transport-level errors mean the bound replica (or the path to it)
// died, and the dispatcher's replica-gone error means the contact
// address outlived the replica behind it. Application refusals — an
// unknown name (gns/gls not-found sentinels are raised locally, not
// remotely), a missing file, a denied write — are final: retrying
// them would only double the resolution load of every 404.
func retryable(err error) bool {
	if err == nil || notFound(err) {
		return false
	}
	if !rpc.IsRemote(err) {
		return true
	}
	return strings.Contains(err.Error(), "no representative for object")
}

func (h *Handler) servePackage(w http.ResponseWriter, r *http.Request, tc obs.SpanContext, p string) {
	objectName, filePath := splitObjectURL(p)
	if objectName == "" || objectName == "/" {
		h.fail(w, http.StatusNotFound, "missing package name")
		return
	}
	h.serveObject(w, r, tc, objectName, filePath, 0)
}

// serveObjectRetries is how many times one request re-binds through
// fresh peers before answering 502. Two attempts after the original
// ride out a replica that died with its registration still cached AND
// the brief window where the replacement's dial gate is still backing
// off — the double fault chaos crash/restart schedules produce.
const serveObjectRetries = 2

// serveObject binds and serves one listing or download. When an
// attempt fails before any body byte in a way a fresh binding might
// cure — the cached binding points at a replica that has since died —
// the binding is dropped and the request retried through fresh peers
// (with a short jittered pause between attempts), instead of answering
// 502 off a cached corpse. (Failures after body bytes flowed cannot be
// retried at this layer; mid-stream replica failover lives in the
// replication subobject.)
func (h *Handler) serveObject(w http.ResponseWriter, r *http.Request, tc obs.SpanContext, objectName, filePath string, attempt int) {
	b, bindCost, err := h.bind(objectName)
	h.addCost(bindCost)
	if err == nil {
		if filePath == "" {
			err = h.serveListing(w, b)
		} else {
			err = h.serveFile(w, r, tc, b, filePath)
		}
		if retryable(err) {
			// Only failures a fresh binding might cure cost the cached
			// binding; an app-level refusal (missing file) keeps it.
			h.dropBinding(objectName)
		}
	}
	if err == nil {
		return
	}
	if attempt < serveObjectRetries && retryable(err) {
		h.cfg.Logf("httpd: %s: retrying through fresh peers: %v", objectName, err)
		if attempt > 0 {
			// Pause before second and later retries: an instant rebind
			// after a double fault tends to land inside the dead path's
			// dial-backoff window and burn the budget for nothing.
			time.Sleep(transport.Backoff(attempt, 5*time.Millisecond, 50*time.Millisecond))
		}
		h.serveObject(w, r, tc, objectName, filePath, attempt+1)
		return
	}
	status := http.StatusBadGateway
	if notFound(err) {
		status = http.StatusNotFound
	}
	h.fail(w, status, fmt.Sprintf("package %s: %v", objectName, err))
}

func (h *Handler) serveListing(w http.ResponseWriter, b *binding) error {
	infos, err := b.stub.ListContents()
	cost := b.stub.TakeCost()
	h.addCost(cost)
	if err != nil {
		return fmt.Errorf("list: %w", err)
	}
	desc, _ := b.stub.GetMeta("description")
	h.addCost(b.stub.TakeCost())

	files := make([]listingFile, 0, len(infos))
	for _, fi := range infos {
		files = append(files, listingFile{
			Path:   fi.Path,
			Href:   "/pkg" + b.name + "/-/" + fi.Path,
			Size:   fi.Size,
			Digest: fmt.Sprintf("%x", fi.Digest[:8]),
		})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("X-GDN-Cost", cost.String())
	h.stats.listings.Add(1)
	if err := listingTemplate.Execute(w, map[string]any{
		"Name": b.name, "Description": desc, "Files": files,
	}); err != nil {
		h.cfg.Logf("httpd: render listing %s: %v", b.name, err)
	}
	return nil
}

var searchTemplate = template.Must(template.New("search").Parse(`<!DOCTYPE html>
<html><head><title>GDN search: {{.Query}}</title></head>
<body>
<h1>Search results for &quot;{{.Query}}&quot;</h1>
<ul>
{{range .Hits}}<li><a href="{{.Href}}">{{.Name}}</a> (matched {{.Matched}})</li>
{{end}}</ul>
</body></html>
`))

type searchHit struct {
	Name    string
	Href    string
	Matched string
}

// serveSearch walks the name space and matches the query against
// package names and metadata — the attribute-based search the paper
// plans beyond exact names (§2, §8).
func (h *Handler) serveSearch(w http.ResponseWriter, query string) {
	query = strings.ToLower(strings.TrimSpace(query))
	if query == "" {
		h.fail(w, http.StatusBadRequest, "missing ?q= query")
		return
	}
	var hits []searchHit
	cost, err := h.cfg.Runtime.Names().Walk("/", func(name string, _ ids.OID) error {
		if strings.Contains(strings.ToLower(name), query) {
			hits = append(hits, searchHit{Name: name, Href: "/pkg" + name, Matched: "name"})
			return nil
		}
		b, bindCost, err := h.bind(name)
		h.addCost(bindCost)
		if err != nil {
			return nil // tolerate races with removals
		}
		meta, err := b.stub.Meta()
		h.addCost(b.stub.TakeCost())
		if err != nil {
			return nil
		}
		for key, val := range meta {
			if strings.HasPrefix(key, "gdn.") {
				continue // internal bookkeeping is not searchable
			}
			if strings.Contains(strings.ToLower(val), query) {
				hits = append(hits, searchHit{Name: name, Href: "/pkg" + name, Matched: key})
				return nil
			}
		}
		return nil
	})
	h.addCost(cost)
	if err != nil {
		h.fail(w, http.StatusBadGateway, fmt.Sprintf("search: %v", err))
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	h.stats.listings.Add(1)
	if err := searchTemplate.Execute(w, map[string]any{"Query": query, "Hits": hits}); err != nil {
		h.cfg.Logf("httpd: render search: %v", err)
	}
}

// serveFile streams a file to the browser with chunk-bounded
// buffering: the content flows replica store → frame stream → HTTP
// body one chunk at a time, and for whole-file downloads the stub
// verifies the SHA-256 digest end to end as it passes through (§6.1).
// A mismatch detected before the body completes truncates the download
// (short of Content-Length, which HTTP clients treat as failure);
// length-preserving corruption can only be flagged after the final
// byte, where HTTP offers the server no in-band signal — clients with
// end-to-end requirements verify the body against the X-GDN-Digest
// header themselves.
//
// The manifest's whole-file SHA-256 doubles as a strong ETag, which
// makes the standard HTTP machinery for cheap re-fetches work against
// the GDN: If-None-Match revalidation answers 304 from a Stat alone,
// and single byte ranges (a download manager resuming, a client
// fetching the changed tail of a mostly-unchanged artifact) are served
// 206 straight from the chunk store — OpBulkRead always took [off, n).
// Partial bodies cannot be digest-verified end to end; they rest on
// the chunk layer's per-chunk verification instead.
func (h *Handler) serveFile(w http.ResponseWriter, r *http.Request, tc obs.SpanContext, b *binding, filePath string) error {
	fi, err := b.stub.Stat(filePath)
	if err != nil {
		h.addCost(b.stub.TakeCost())
		return fmt.Errorf("file %s: %w", filePath, err)
	}

	etag := fmt.Sprintf(`"%x"`, fi.Digest)
	w.Header().Set("ETag", etag)
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("X-GDN-Digest", fmt.Sprintf("%x", fi.Digest))

	// Last-Modified rides the package's replicated modification stamp;
	// per-file granularity is deliberately not claimed (any moderator
	// change bumps the whole package). The ETag stays the precise
	// validator; Last-Modified serves clients that only speak dates,
	// from a per-binding cache so the hot download path pays no extra
	// replica invocation.
	lastMod := h.modified(b)
	if !lastMod.IsZero() {
		w.Header().Set("Last-Modified", lastMod.Format(http.TimeFormat))
	}

	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		h.stats.notModified.Add(1)
		h.addCost(b.stub.TakeCost())
		w.WriteHeader(http.StatusNotModified)
		return nil
	}
	// If-Modified-Since applies only without If-None-Match (RFC 9110
	// §13.1.3): a date is a weaker validator than an entity tag.
	if ims := r.Header.Get("If-Modified-Since"); ims != "" && r.Header.Get("If-None-Match") == "" && !lastMod.IsZero() {
		if t, perr := http.ParseTime(ims); perr == nil && !lastMod.After(t) {
			h.stats.notModified.Add(1)
			w.WriteHeader(http.StatusNotModified)
			return nil
		}
	}

	w.Header().Set("Content-Type", "application/octet-stream")

	// A Range is honoured only when the client's copy is current: an
	// If-Range naming another version means its partial copy is of
	// different content, so it gets the whole file.
	rangeHdr := r.Header.Get("Range")
	if ir := r.Header.Get("If-Range"); ir != "" && strings.TrimSpace(ir) != etag {
		rangeHdr = ""
	}
	if rangeHdr != "" {
		off, n, ok, satisfiable := parseRange(rangeHdr, fi.Size)
		switch {
		case !ok:
			// Syntactically malformed (or multi-range, which this server
			// does not slice): per RFC 9110 the header is ignored and the
			// whole file served.
		case !satisfiable:
			w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", fi.Size))
			h.fail(w, http.StatusRequestedRangeNotSatisfiable,
				fmt.Sprintf("range %q outside %d-byte file", rangeHdr, fi.Size))
			return nil
		default:
			w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
			w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, off+n-1, fi.Size))
			w.WriteHeader(http.StatusPartialContent)
			var served int64
			if r.Method != http.MethodHead {
				served, err = b.stub.ReadFileRangeToT(tc, w, filePath, off, n)
				if err != nil {
					// Headers (and possibly bytes) are out; the response
					// cannot be retried, only truncated.
					h.cfg.Logf("httpd: stream range %s/%s after %d bytes: %v", b.name, filePath, served, err)
				}
			}
			h.stats.downloads.Add(1)
			h.stats.ranges.Add(1)
			h.stats.bytesServed.Add(served)
			h.addCost(b.stub.TakeCost())
			return nil
		}
	}

	w.Header().Set("Content-Length", strconv.FormatInt(fi.Size, 10))
	var served int64
	if r.Method != http.MethodHead {
		served, err = b.stub.ReadFileToT(tc, w, filePath)
		if err != nil {
			h.cfg.Logf("httpd: stream %s/%s after %d bytes: %v", b.name, filePath, served, err)
		}
	}
	h.stats.downloads.Add(1)
	h.stats.bytesServed.Add(served)
	h.addCost(b.stub.TakeCost())
	return nil
}

// etagMatch implements the If-None-Match comparison: a comma-separated
// list of entity tags, or "*" for any. Our tags are strong, but a
// client echoing one back weakened (W/ prefix) still names the same
// bytes, so the weak comparison is used.
func etagMatch(header, etag string) bool {
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate != "" && (candidate == "*" || candidate == etag) {
			return true
		}
	}
	return false
}

// parseRange interprets a single-range "bytes=" header against a file
// of the given size, returning the [off, off+n) window. ok reports a
// syntactically usable single range (multi-range headers and other
// units report !ok and are ignored by the caller, which RFC 9110
// permits); satisfiable reports whether it selects at least one byte.
func parseRange(header string, size int64) (off, n int64, ok, satisfiable bool) {
	spec, isBytes := strings.CutPrefix(strings.TrimSpace(header), "bytes=")
	if !isBytes || strings.Contains(spec, ",") {
		return 0, 0, false, false
	}
	first, last, dashed := strings.Cut(strings.TrimSpace(spec), "-")
	if !dashed {
		return 0, 0, false, false
	}
	if first == "" {
		// Suffix form "-N": the final N bytes.
		suffix, err := strconv.ParseInt(last, 10, 64)
		if err != nil || suffix < 0 {
			return 0, 0, false, false
		}
		if suffix == 0 || size == 0 {
			return 0, 0, true, false
		}
		if suffix > size {
			suffix = size
		}
		return size - suffix, suffix, true, true
	}
	start, err := strconv.ParseInt(first, 10, 64)
	if err != nil || start < 0 {
		return 0, 0, false, false
	}
	end := size - 1 // open form "N-"
	if last != "" {
		end, err = strconv.ParseInt(last, 10, 64)
		if err != nil || end < start {
			return 0, 0, false, false
		}
	}
	if start >= size {
		return 0, 0, true, false
	}
	if end >= size {
		end = size - 1
	}
	return start, end - start + 1, true, true
}

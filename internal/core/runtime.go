package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gdn/internal/gls"
	"gdn/internal/gns"
	"gdn/internal/ids"
	"gdn/internal/sec"
	"gdn/internal/store"
	"gdn/internal/transport"
)

// Runtime is the Globe run-time system of one address space: it binds
// clients to distributed shared objects (§3.4) and constructs hosted
// replicas for object servers. One Runtime serves one site.
type Runtime struct {
	site     string
	net      transport.Network
	resolver *gls.Resolver
	names    *gns.NameService
	registry *Registry
	auth     *sec.Config
	clock    func() time.Time
	logf     func(string, ...any)

	mu  sync.Mutex
	rnd *rand.Rand
}

// RuntimeConfig assembles a Runtime.
type RuntimeConfig struct {
	// Site is the local site identifier.
	Site string
	// Net is the transport network.
	Net transport.Network
	// Resolver reaches the Globe Location Service; required for Bind.
	Resolver *gls.Resolver
	// Names reaches the Globe Name Service; required for BindName only.
	Names *gns.NameService
	// Registry is the local implementation repository.
	Registry *Registry
	// Auth supplies this party's credentials; nil disables security.
	Auth *sec.Config
	// Clock supplies the time to replication subobjects that make
	// TTL-based decisions; nil means wall time. Simulations install
	// virtual clocks here.
	Clock func() time.Time
	// Seed makes contact-address selection reproducible in tests.
	Seed int64
	// Logf receives diagnostics; nil discards them.
	Logf func(string, ...any)
}

// NewRuntime builds a run-time system.
func NewRuntime(cfg RuntimeConfig) *Runtime {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	return &Runtime{
		site:     cfg.Site,
		net:      cfg.Net,
		resolver: cfg.Resolver,
		names:    cfg.Names,
		registry: cfg.Registry,
		auth:     cfg.Auth,
		clock:    cfg.Clock,
		logf:     cfg.Logf,
		rnd:      rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Site returns the runtime's site.
func (rt *Runtime) Site() string { return rt.site }

// Registry returns the implementation repository.
func (rt *Runtime) Registry() *Registry { return rt.registry }

// Resolver returns the location-service resolver.
func (rt *Runtime) Resolver() *gls.Resolver { return rt.resolver }

// Names returns the name service, or nil.
func (rt *Runtime) Names() *gns.NameService { return rt.names }

// Bind installs a client proxy for the object in this address space:
// the location service maps the OID to contact addresses, the
// implementation and protocol they name are loaded from the local
// registry, and the composed representative is returned (§3.4). The
// returned cost covers the location lookup; subsequent invocations
// report their own costs.
func (rt *Runtime) Bind(oid ids.OID) (*LR, time.Duration, error) {
	if rt.resolver == nil {
		return nil, 0, fmt.Errorf("core: runtime at %s has no location-service resolver", rt.site)
	}
	addrs, cost, err := rt.resolver.Lookup(oid)
	if err != nil {
		return nil, cost, fmt.Errorf("core: bind %s: %w", oid.Short(), err)
	}
	lr, err := rt.proxyFromAddrs(oid, addrs)
	return lr, cost, err
}

// BindName resolves an object name through the Globe Name Service and
// binds to the resulting identifier — the two-level naming scheme in
// one step.
func (rt *Runtime) BindName(name string) (*LR, time.Duration, error) {
	if rt.names == nil {
		return nil, 0, fmt.Errorf("core: runtime at %s has no name service", rt.site)
	}
	oid, nameCost, err := rt.names.Resolve(name)
	if err != nil {
		return nil, nameCost, fmt.Errorf("core: bind %q: %w", name, err)
	}
	lr, bindCost, err := rt.Bind(oid)
	return lr, nameCost + bindCost, err
}

// proxyFromAddrs composes the client-side representative. The protocol
// and implementation come from the contact addresses; all addresses of
// one object advertise the same protocol, so the first one picks it.
func (rt *Runtime) proxyFromAddrs(oid ids.OID, addrs []gls.ContactAddress) (*LR, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("core: bind %s: no contact addresses", oid.Short())
	}
	primary := addrs[rt.pick(len(addrs))]
	sem, err := rt.registry.NewSemantics(primary.Impl)
	if err != nil {
		return nil, fmt.Errorf("core: bind %s: %w", oid.Short(), err)
	}
	proto, err := rt.registry.Protocol(primary.Protocol)
	if err != nil {
		return nil, fmt.Errorf("core: bind %s: %w", oid.Short(), err)
	}
	env := &Env{
		OID:   oid,
		Site:  rt.site,
		Net:   rt.net,
		Exec:  NewLocalExec(sem),
		Auth:  rt.auth,
		Peers: addrs,
		Resolve: func() ([]gls.ContactAddress, time.Duration, error) {
			return rt.resolver.Lookup(oid)
		},
		Clock: rt.clock,
		Logf:  rt.logf,
		Store: semStore(sem, nil),
	}
	repl, err := proto.NewProxy(env)
	if err != nil {
		return nil, fmt.Errorf("core: bind %s: %w", oid.Short(), err)
	}
	return newLR(oid, sem, repl, ""), nil
}

func (rt *Runtime) pick(n int) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.rnd.Intn(n)
}

// semStore resolves the chunk store serving a semantics' bulk
// content: the explicitly assigned one, else the semantics' own.
func semStore(sem Semantics, assigned *store.Store) *store.Store {
	if assigned != nil {
		return assigned
	}
	if cs, ok := sem.(ChunkStored); ok {
		return cs.Store()
	}
	return nil
}

// ReplicaSpec describes one hosted replica to construct.
type ReplicaSpec struct {
	// OID identifies the object; required.
	OID ids.OID
	// Impl names the semantics implementation in the registry.
	Impl string
	// Protocol and Role select and parameterize the replication
	// subobject.
	Protocol string
	Role     string
	// Params carries protocol tuning from the replication scenario.
	Params map[string]string
	// Peers holds contact addresses of already-existing representatives
	// (e.g. the master, for a new slave).
	Peers []gls.ContactAddress
	// InitState, when non-nil, seeds the semantics state (recovery from
	// a checkpoint or replica creation with state transfer).
	InitState []byte
	// Store, when non-nil, is the chunk store the replica's bulk
	// content must live in: an object server's durable store or a
	// proxy cache's LRU store. It is injected into the semantics
	// before InitState is installed, so a manifest-based state finds
	// its chunks. Nil leaves the semantics on its own private store.
	Store *store.Store
}

// NewReplica composes a hosted representative serving on disp and
// returns it with the contact address to register in the location
// service. The caller (a Globe Object Server) performs the GLS
// registration itself so registration authority stays with the server.
func (rt *Runtime) NewReplica(spec ReplicaSpec, disp *Dispatcher) (*LR, gls.ContactAddress, error) {
	if spec.OID.IsNil() {
		return nil, gls.ContactAddress{}, fmt.Errorf("core: replica spec without object identifier")
	}
	if disp == nil {
		return nil, gls.ContactAddress{}, fmt.Errorf("core: hosted replica needs a dispatcher")
	}
	sem, err := rt.registry.NewSemantics(spec.Impl)
	if err != nil {
		return nil, gls.ContactAddress{}, err
	}
	// Home the semantics' bulk content on the hosting process's store
	// before any state arrives, so a manifest-based InitState finds
	// its chunks there and chunk fetches are served from it.
	if spec.Store != nil {
		if cs, ok := sem.(ChunkStored); ok {
			cs.UseStore(spec.Store)
		}
	}
	if spec.InitState != nil {
		if err := sem.UnmarshalState(spec.InitState); err != nil {
			return nil, gls.ContactAddress{}, fmt.Errorf("core: replica %s: seed state: %w", spec.OID.Short(), err)
		}
	}
	proto, err := rt.registry.Protocol(spec.Protocol)
	if err != nil {
		return nil, gls.ContactAddress{}, err
	}
	// Hosted replicas that route through a ranked peer set (the cache
	// protocol re-parenting) re-resolve through the location service
	// just like proxies; runtimes without a resolver (moderator staging
	// worlds) leave the set on its construction-time peers.
	var resolve func() ([]gls.ContactAddress, time.Duration, error)
	if rt.resolver != nil {
		oid := spec.OID
		resolve = func() ([]gls.ContactAddress, time.Duration, error) {
			return rt.resolver.Lookup(oid)
		}
	}
	env := &Env{
		OID:     spec.OID,
		Site:    rt.site,
		Net:     rt.net,
		Exec:    NewLocalExec(sem),
		Disp:    disp,
		Auth:    rt.auth,
		Role:    spec.Role,
		Params:  spec.Params,
		Peers:   spec.Peers,
		Resolve: resolve,
		Clock:   rt.clock,
		Logf:    rt.logf,
		Store:   semStore(sem, spec.Store),
	}
	repl, err := proto.NewReplica(env)
	if err != nil {
		return nil, gls.ContactAddress{}, fmt.Errorf("core: replica %s: %w", spec.OID.Short(), err)
	}
	ca := gls.ContactAddress{
		Protocol: spec.Protocol,
		Address:  disp.Addr(),
		Impl:     spec.Impl,
		Role:     spec.Role,
	}
	return newLR(spec.OID, sem, repl, spec.Role), ca, nil
}

package core

import (
	"testing"
	"time"

	"gdn/internal/gls"
)

// peersEnv builds a minimal Env with a controllable clock and two
// candidate addresses.
func peersEnv(now *time.Time, addrs ...string) *Env {
	cas := make([]gls.ContactAddress, len(addrs))
	for i, a := range addrs {
		cas[i] = gls.ContactAddress{Address: a}
	}
	return &Env{
		Peers: cas,
		Clock: func() time.Time { return *now },
		Logf:  func(string, ...any) {},
	}
}

// TestPeerSetHealthIsPerOperationClass: a peer that times out on reads
// but serves writes (an asymmetric partition) must stay write-eligible
// while its read traffic is diverted — and write successes must not
// resurrect its read health.
func TestPeerSetHealthIsPerOperationClass(t *testing.T) {
	now := time.Unix(1e9, 0)
	ps, err := NewPeerSet(peersEnv(&now, "a:disp", "b:disp"), "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		ps.noteFailure("a:disp", false) // reads keep failing
		ps.noteSuccess("a:disp", true, 0)
	}
	st := ps.peers["a:disp"]
	if got := st.tier(opRead, now); got != tierBackedOff {
		t.Fatalf("read tier = %d, want backed off", got)
	}
	if got := st.tier(opWrite, now); got != tierGood {
		t.Fatalf("write tier = %d, want good despite read failures", got)
	}
	// Reads always route to the healthy peer first while the streak is
	// active; writes still consider both (ranking within the good tier
	// is shuffled, so only membership is asserted).
	for i := 0; i < 50; i++ {
		if got := ps.candidates(false)[0]; got != "b:disp" {
			t.Fatalf("read candidate[0] = %q, want b:disp", got)
		}
	}
	if got := ps.candidates(true); len(got) != 2 {
		t.Fatalf("write candidates = %v, want both", got)
	}
}

// TestPeerSetBackoffExpiryProbesInsteadOfFlapping: when a failed
// peer's backoff expires it must rank behind every healthy candidate
// (a probe), not jump back into the healthy group — the flap that
// re-herded traffic onto a still-partitioned peer every backoff
// period. Only a real success restores it.
func TestPeerSetBackoffExpiryProbesInsteadOfFlapping(t *testing.T) {
	now := time.Unix(1e9, 0)
	ps, err := NewPeerSet(peersEnv(&now, "a:disp", "b:disp"), "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	ps.noteFailure("a:disp", false)
	now = now.Add(peerMaxBackoff) // far past the streak's backoff
	st := ps.peers["a:disp"]
	if got := st.tier(opRead, now); got != tierProbe {
		t.Fatalf("tier after backoff expiry = %d, want probe", got)
	}
	// The probing peer never outranks the healthy one, however often
	// the (shuffled) ranking is recomputed.
	for i := 0; i < 50; i++ {
		if got := ps.candidates(false)[0]; got != "b:disp" {
			t.Fatalf("candidate[0] = %q, want healthy peer first", got)
		}
	}
	ps.noteSuccess("a:disp", false, 0)
	if got := st.tier(opRead, now); got != tierGood {
		t.Fatalf("tier after successful probe = %d, want good", got)
	}
}

package core

import (
	"time"

	"gdn/internal/ids"
)

// LR is a local representative: the composition of subobjects that
// represents one distributed shared object in one address space
// (Figure 1). Depending on its role an LR is a client proxy (not
// contactable), a replica (registered with the location service), or a
// cache.
type LR struct {
	oid  ids.OID
	sem  Semantics
	ctrl *Control
	repl Replication
	role string
}

// newLR composes a representative from its subobjects.
func newLR(oid ids.OID, sem Semantics, repl Replication, role string) *LR {
	return &LR{oid: oid, sem: sem, ctrl: NewControl(repl), repl: repl, role: role}
}

// OID returns the object's identifier.
func (lr *LR) OID() ids.OID { return lr.oid }

// Role returns this representative's protocol role ("" for proxies).
func (lr *LR) Role() string { return lr.role }

// Control exposes the control subobject; typed stubs invoke through it.
func (lr *LR) Control() *Control { return lr.ctrl }

// Invoke routes one marshalled method call through the representative's
// subobject stack: control → replication → (possibly) communication.
func (lr *LR) Invoke(method string, write bool, args []byte) ([]byte, time.Duration, error) {
	return lr.ctrl.Invoke(method, write, args)
}

// Semantics exposes the semantics subobject for hosting infrastructure
// (object servers marshal its state for checkpoints). Application code
// must invoke through Control so the replication protocol stays in
// charge of consistency.
func (lr *LR) Semantics() Semantics { return lr.sem }

// Replication exposes the replication subobject; experiments reach
// protocol-specific statistics (e.g. cache hit rates) through it.
func (lr *LR) Replication() Replication { return lr.repl }

// Close tears the representative down: the replication subobject
// detaches from its peers and unregisters its endpoint, and a
// chunk-stored semantics drops its pins so a shared store can
// reclaim (or start aging out) this replica's content.
func (lr *LR) Close() error {
	err := lr.ctrl.Close()
	if rs, ok := lr.sem.(interface{ ReleaseStored() }); ok {
		rs.ReleaseStored()
	}
	return err
}

// NewLocalLR composes a representative whose replication subobject
// executes invocations directly against the given semantics — a single
// local copy with no network presence. Moderator tools stage new
// objects with it before shipping their state to object servers.
func NewLocalLR(oid ids.OID, sem Semantics) *LR {
	return newLR(oid, sem, localOnly{exec: NewLocalExec(sem)}, "")
}

type localOnly struct {
	exec LocalExec
}

func (l localOnly) Invoke(inv Invocation) ([]byte, time.Duration, error) {
	out, err := l.exec.Execute(inv)
	return out, 0, err
}

func (l localOnly) Close() error { return nil }

package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gdn/internal/gls"
	"gdn/internal/obs"
	"gdn/internal/rpc"
	"gdn/internal/transport"
)

// Process-wide mirrors of the per-set counters, so the registry shows
// failover and re-resolve pressure across every proxy at once.
var (
	mFailovers = obs.Default.Counter("gdn_peerset_failovers_total",
		"calls moved to the next ranked peer after a failoverable error")
	mResolves = obs.Default.Counter("gdn_peerset_resolves_total",
		"location-service re-resolves of a peer set")
)

// PeerSet is the shared ranked peer-set behind every proxy-side
// replication subobject: the contact addresses the location service
// returned, tracked with per-peer health (consecutive failures, a
// latency EWMA of successful calls) and refreshed through the runtime
// so replicas that appear after binding are discovered and dead ones
// age out. It replaces the bind-time "pin Peers[0] forever" behaviour
// that turned one replica crash into an outage for every client bound
// before it.
//
// Ranking: peers are grouped by role preference (most capable first),
// healthy peers come before ones in failure backoff, and the healthy
// group is shuffled per call so concurrent proxies spread load across
// interchangeable replicas instead of herding onto one — with
// chronically slow peers (latency EWMA far above the group's best)
// demoted to the back of their group.
//
// Health is tracked per operation class (reads and writes separately)
// and in three tiers: healthy (no active streak), probing (streak
// present but its backoff expired — one attempt is allowed through to
// test recovery), and backed-off. A peer only returns to healthy on an
// actual success, so a backoff expiring does not flip it ahead of
// proven-good candidates — the flapping an asymmetric partition used
// to cause, where a peer reachable for writes but timing out on reads
// bounced between top- and bottom-ranked every backoff period.
//
// Failover: Do walks the ranking and retries the attempt on the next
// candidate when the failure class allows it. Reads fail over on any
// transport-level error; writes only on errors that prove the request
// never reached a replica (unreachable destination, no listener, a
// provably-unsent rpc failure) — a connection that died mid-call
// leaves a write's fate unknown, and replaying it is the caller's
// decision, not the routing layer's.
type PeerSet struct {
	env        *Env
	protocol   string   // contact-address protocol this set serves
	readPrefs  []string // role preference order for reads
	writePrefs []string // role preference order for writes
	exclude    string   // own dispatcher address, never a candidate
	pinned     bool     // fixed candidate set; no re-resolution

	mu         sync.Mutex
	rnd        *rand.Rand
	peers      map[string]*peerState
	clients    map[string]*PeerClient
	resolvedAt time.Time

	failovers atomic.Int64
	resolves  atomic.Int64
}

// Operation classes for per-peer health. A one-way partition can leave
// a peer serving one class while the other times out; sharing a single
// streak would let write successes mask read deadness (and vice
// versa), so each class keeps its own record.
const (
	opRead = iota
	opWrite
	opClasses
)

func opClass(write bool) int {
	if write {
		return opWrite
	}
	return opRead
}

// peerState is one candidate's health record.
type peerState struct {
	ca       gls.ContactAddress
	fails    [opClasses]int       // consecutive failures per operation class
	lastFail [opClasses]time.Time // when each streak's latest failure happened
	ewma     time.Duration        // latency EWMA of successful calls (virtual cost)
}

// Health tiers, best first. Probing sits between: the streak's backoff
// has expired, so the peer may be tried — but only behind every
// healthy candidate, and it must actually succeed to regain tierGood.
const (
	tierGood = iota
	tierProbe
	tierBackedOff
)

// tier classifies one operation class's health at time now.
func (st *peerState) tier(class int, now time.Time) int {
	if st.fails[class] == 0 {
		return tierGood
	}
	if now.Sub(st.lastFail[class]) >= backoff(st.fails[class]) {
		return tierProbe
	}
	return tierBackedOff
}

// Peer-set tuning. Constants rather than scenario parameters: these
// shape routing inside one address space, not replica consistency.
const (
	// peerFailBackoff is the base cool-down after a failure; it doubles
	// per consecutive failure up to peerMaxBackoff. A peer in backoff
	// ranks behind every healthy candidate but is never unreachable —
	// when everything else is down it still gets tried.
	peerFailBackoff = 2 * time.Second
	peerMaxBackoff  = 30 * time.Second
	// peerRefreshEvery re-resolves the contact-address set through the
	// runtime on a slow cadence; exhausting every candidate forces an
	// immediate re-resolve regardless.
	peerRefreshEvery = 30 * time.Second
	// peerSlowFactor demotes a peer whose latency EWMA exceeds this
	// multiple of the best in its ranking group.
	peerSlowFactor = 4
)

// peerSeed distinguishes every PeerSet's RNG. Seeding from object
// bytes (the old msProxy scheme) made every proxy of one object pick
// the same "random" replica order world-wide, herding its whole read
// load onto one slave; a process-wide counter keeps instances
// independent while staying deterministic enough to debug.
var peerSeed atomic.Int64

// NewPeerSet builds the ranked peer-set for a proxy or a hosted
// replica. The initial candidates come from env.Peers (the lookup that
// bound the object, or the creation scenario), filtered to the given
// protocol; readPrefs and writePrefs order the roles from most to
// least capable for each operation class. A hosted replica's own
// dispatcher address is never a candidate — a registered cache must
// not discover itself as its own parent on a re-resolve.
func NewPeerSet(env *Env, protocol string, readPrefs, writePrefs []string) (*PeerSet, error) {
	return newPeerSet(env, env.Peers, protocol, readPrefs, writePrefs, false)
}

// NewPeerSetPinned builds a single-candidate set for a scenario that
// pins its upstream to one address (the cache protocol's "parent"
// parameter): same health bookkeeping and call plumbing, but no role
// ranking and no re-resolution.
func NewPeerSetPinned(env *Env, addr string) (*PeerSet, error) {
	return newPeerSet(env, []gls.ContactAddress{{Address: addr}}, "", nil, nil, true)
}

func newPeerSet(env *Env, cas []gls.ContactAddress, protocol string, readPrefs, writePrefs []string, pinned bool) (*PeerSet, error) {
	ps := &PeerSet{
		env:        env,
		protocol:   protocol,
		readPrefs:  readPrefs,
		writePrefs: writePrefs,
		pinned:     pinned,
		rnd:        rand.New(rand.NewSource(peerSeed.Add(1)*0x5851F42D4C957F2D + time.Now().UnixNano())),
		peers:      make(map[string]*peerState),
		clients:    make(map[string]*PeerClient),
		resolvedAt: env.Now(),
	}
	if env.Disp != nil {
		ps.exclude = env.Disp.Addr()
	}
	ps.mergeLocked(cas)
	if len(ps.peers) == 0 {
		return nil, fmt.Errorf("core: no contactable representative among %d peers", len(cas))
	}
	return ps, nil
}

// mergeLocked reconciles the candidate set with a fresh lookup result:
// new addresses join with clean health, known ones keep their health
// record, and addresses the location service no longer returns are
// dropped (their connections closed). A result with no usable
// candidate leaves the set untouched — lookups are proximity-based, so
// a registered cache asking the location service for its object gets
// its own (excluded) address back as the nearest replica, and emptying
// the set on that answer would orphan the cache from its parents.
// Callers hold ps.mu or own ps exclusively (construction).
func (ps *PeerSet) mergeLocked(addrs []gls.ContactAddress) {
	seen := make(map[string]bool, len(addrs))
	for _, ca := range addrs {
		if ps.protocol != "" && ca.Protocol != ps.protocol {
			continue
		}
		if ps.exclude != "" && ca.Address == ps.exclude {
			continue
		}
		seen[ca.Address] = true
	}
	if len(seen) == 0 && len(ps.peers) > 0 {
		return
	}
	for _, ca := range addrs {
		if !seen[ca.Address] {
			continue
		}
		if st, ok := ps.peers[ca.Address]; ok {
			st.ca = ca // role may have changed (slave promoted, ...)
			continue
		}
		ps.peers[ca.Address] = &peerState{ca: ca}
	}
	for addr := range ps.peers {
		if !seen[addr] {
			delete(ps.peers, addr)
			if pc := ps.clients[addr]; pc != nil {
				pc.Close()
				delete(ps.clients, addr)
			}
		}
	}
}

// refresh re-resolves the contact-address set through the runtime.
// force skips the staleness check (used when every candidate failed).
// It reports whether a lookup actually ran.
func (ps *PeerSet) refresh(force bool) (time.Duration, bool) {
	if ps.env.Resolve == nil || ps.pinned {
		return 0, false
	}
	now := ps.env.Now()
	ps.mu.Lock()
	stale := now.Sub(ps.resolvedAt) >= peerRefreshEvery
	ps.mu.Unlock()
	if !stale && !force {
		return 0, false
	}
	addrs, cost, err := ps.env.Resolve()
	ps.resolves.Add(1)
	mResolves.Inc()
	if err != nil {
		// A failed lookup (location service unreachable, or the object
		// gone) keeps the current set: stale candidates still beat none.
		ps.env.Logf("core: peer-set re-resolve for %s: %v", ps.env.OID.Short(), err)
		return cost, false
	}
	ps.mu.Lock()
	ps.mergeLocked(addrs)
	ps.resolvedAt = now
	ps.mu.Unlock()
	return cost, true
}

// ClientFor returns the cached connection for a candidate address,
// dialing on first use. Callers that orchestrate per-candidate traffic
// themselves (the active protocol's all-peer chunk negotiation) share
// the set's connections through it.
func (ps *PeerSet) ClientFor(addr string) *PeerClient {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	pc, ok := ps.clients[addr]
	if !ok {
		pc = ps.env.Dial(addr)
		ps.clients[addr] = pc
	}
	return pc
}

// PickAddr returns the currently top-ranked candidate for the given
// operation class — the address a caller should treat as its upstream
// right now (the cache protocol's parent). false when the set is empty.
func (ps *PeerSet) PickAddr(write bool) (string, bool) {
	addrs := ps.candidates(write)
	if len(addrs) == 0 {
		return "", false
	}
	return addrs[0], true
}

// backoff returns the cool-down after n consecutive failures.
func backoff(n int) time.Duration {
	d := peerFailBackoff
	for i := 1; i < n && d < peerMaxBackoff; i++ {
		d *= 2
	}
	if d > peerMaxBackoff {
		d = peerMaxBackoff
	}
	return d
}

// prefIndex maps a role to its rank in a preference list; unlisted
// roles rank last (still usable, like pickPeer's final fallback).
func prefIndex(prefs []string, role string) int {
	for i, p := range prefs {
		if p == role {
			return i
		}
	}
	return len(prefs)
}

// candidates returns the ranked address order for one attempt.
func (ps *PeerSet) candidates(write bool) []string {
	prefs := ps.readPrefs
	if write {
		prefs = ps.writePrefs
	}
	now := ps.env.Now()
	class := opClass(write)

	type ranked struct {
		addr    string
		pref    int
		tier    int
		fails   int
		ewma    time.Duration
		shuffle int
	}
	ps.mu.Lock()
	out := make([]ranked, 0, len(ps.peers))
	for addr, st := range ps.peers {
		out = append(out, ranked{
			addr:    addr,
			pref:    prefIndex(prefs, st.ca.Role),
			tier:    st.tier(class, now),
			fails:   st.fails[class],
			ewma:    st.ewma,
			shuffle: ps.rnd.Int(),
		})
	}
	ps.mu.Unlock()

	// Latency demotion: within each healthy pref group, a peer whose
	// EWMA is far above the group's best goes behind its siblings.
	best := make(map[int]time.Duration)
	for _, r := range out {
		if r.tier != tierGood || r.ewma == 0 {
			continue
		}
		if b, ok := best[r.pref]; !ok || r.ewma < b {
			best[r.pref] = r.ewma
		}
	}
	slow := func(r ranked) bool {
		b, ok := best[r.pref]
		return ok && r.tier == tierGood && r.ewma > time.Duration(peerSlowFactor)*b
	}
	sortRanked(out, func(a, b ranked) bool {
		// Health outranks role preference: a healthy fallback beats a
		// preferred-role peer in failure backoff — the whole point of
		// the set is never handing traffic to a known corpse while an
		// alternative lives. An expired backoff only promotes a peer to
		// the probing tier, still behind everything healthy, so one
		// probe (not the whole herd) tests its recovery.
		if a.tier != b.tier {
			return a.tier < b.tier
		}
		if a.tier != tierGood {
			if a.pref != b.pref {
				return a.pref < b.pref
			}
			return a.fails < b.fails
		}
		if a.pref != b.pref {
			return a.pref < b.pref
		}
		if sa, sb := slow(a), slow(b); sa != sb {
			return !sa
		}
		return a.shuffle < b.shuffle
	})
	addrs := make([]string, len(out))
	for i, r := range out {
		addrs[i] = r.addr
	}
	return addrs
}

// sortRanked is insertion sort: peer sets are a handful of entries,
// and it saves pulling in sort/slices closure machinery on a hot path.
func sortRanked[T any](s []T, less func(a, b T) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// noteSuccess resets a peer's failure streak for one operation class
// and folds the observed latency into its EWMA. Only the served class
// recovers: a write landing on a peer whose reads time out (an
// asymmetric partition) must not relaunch read traffic at it.
func (ps *PeerSet) noteSuccess(addr string, write bool, cost time.Duration) {
	ps.mu.Lock()
	if st, ok := ps.peers[addr]; ok {
		st.fails[opClass(write)] = 0
		if cost > 0 {
			if st.ewma == 0 {
				st.ewma = cost
			} else {
				st.ewma = (3*st.ewma + cost) / 4
			}
		}
	}
	ps.mu.Unlock()
}

// noteFailure extends a peer's failure streak for one operation class.
func (ps *PeerSet) noteFailure(addr string, write bool) {
	now := ps.env.Now()
	ps.mu.Lock()
	if st, ok := ps.peers[addr]; ok {
		class := opClass(write)
		st.fails[class]++
		st.lastFail[class] = now
	}
	ps.mu.Unlock()
}

// noFailoverError marks an error as terminal for the failover loop:
// the failure is the caller's (a sink that refused bytes, a policy
// decision), not the candidate's, so trying another replica would
// repeat work that already partially happened.
type noFailoverError struct{ err error }

func (e *noFailoverError) Error() string { return e.err.Error() }
func (e *noFailoverError) Unwrap() error { return e.err }

// NoFailover wraps err so Do propagates it instead of retrying on the
// next candidate. errors.Is/As see through the wrapper.
func NoFailover(err error) error {
	if err == nil {
		return nil
	}
	return &noFailoverError{err: err}
}

// Failoverable classifies an error for retry-on-another-replica. App
// errors (the remote handler ran and said no) never fail over; for
// writes, only failures that prove the request never executed do —
// retrying an ambiguous write is an at-least-once decision the caller
// must make explicitly.
func Failoverable(err error, write bool) bool {
	var nf *noFailoverError
	if err == nil || rpc.IsRemote(err) || errors.As(err, &nf) {
		return false
	}
	if !write {
		return true
	}
	return errors.Is(err, transport.ErrUnreachable) || errors.Is(err, transport.ErrNoListener) ||
		rpc.IsUnsent(err)
}

// Do runs attempt against ranked candidates until one succeeds, the
// error stops being failover-safe, or every candidate (including any
// discovered by a forced re-resolve) has been tried. The attempt
// receives the candidate's address alongside its connection, so
// callers that must remember who served them (a cache re-subscribing
// at its new parent) can. It returns the accumulated virtual cost of
// all attempts plus any refresh lookup.
func (ps *PeerSet) Do(write bool, attempt func(addr string, pc *PeerClient) (time.Duration, error)) (time.Duration, error) {
	cost, _ := ps.refresh(false)
	tried := make(map[string]bool)
	var lastErr error
	for round := 0; round < 2; round++ {
		progressed := false
		for _, addr := range ps.candidates(write) {
			if tried[addr] {
				continue
			}
			tried[addr] = true
			progressed = true
			c, err := attempt(addr, ps.ClientFor(addr))
			cost += c
			if err == nil {
				ps.noteSuccess(addr, write, c)
				return cost, nil
			}
			lastErr = err
			var nf *noFailoverError
			if rpc.IsRemote(err) || errors.As(err, &nf) {
				// The peer is alive (it answered, or the failure was the
				// caller's own); its health record is not to blame.
				return cost, err
			}
			ps.noteFailure(addr, write)
			if !Failoverable(err, write) {
				return cost, err
			}
			ps.failovers.Add(1)
			mFailovers.Inc()
		}
		if round == 1 || !progressed {
			break
		}
		// Every known candidate failed: ask the location service for a
		// fresh set once — replicas created after we bound may be alive.
		c, ok := ps.refresh(true)
		cost += c
		if !ok {
			break
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("core: no contactable representative for %s", ps.env.OID.Short())
	}
	return cost, lastErr
}

// Call is Do specialised to one unary replica-protocol operation.
func (ps *PeerSet) Call(op uint16, body []byte, write bool) ([]byte, time.Duration, error) {
	var resp []byte
	cost, err := ps.Do(write, func(_ string, pc *PeerClient) (time.Duration, error) {
		r, c, err := pc.Call(op, body)
		if err == nil {
			resp = r
		}
		return c, err
	})
	return resp, cost, err
}

// Failovers returns how many attempts were retried on another
// candidate; tests assert failover happened (or didn't).
func (ps *PeerSet) Failovers() int64 { return ps.failovers.Load() }

// Resolves returns how many re-resolve lookups ran.
func (ps *PeerSet) Resolves() int64 { return ps.resolves.Load() }

// Addrs returns the current candidate addresses, unranked.
func (ps *PeerSet) Addrs() []string {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]string, 0, len(ps.peers))
	for addr := range ps.peers {
		out = append(out, addr)
	}
	return out
}

// Close releases every cached connection.
func (ps *PeerSet) Close() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, pc := range ps.clients {
		pc.Close()
	}
	ps.clients = make(map[string]*PeerClient)
	return nil
}

package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/netsim"
	"gdn/internal/rpc"
	"gdn/internal/wire"
)

func TestInvocationRoundTrip(t *testing.T) {
	f := func(method string, write bool, args []byte) bool {
		if len(method) > 1000 {
			return true
		}
		in := Invocation{Method: method, Write: write, Args: args}
		out, err := DecodeInvocation(in.Encode())
		if err != nil {
			return false
		}
		// Args round-trips nil to empty; compare contents.
		return out.Method == in.Method && out.Write == in.Write &&
			string(out.Args) == string(in.Args)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioValidateAndRoundTrip(t *testing.T) {
	good := Scenario{
		Protocol: "masterslave",
		Servers:  []string{"a:gos", "b:gos"},
		Params:   map[string]string{"push": "sync"},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeScenario(good.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(good, out) {
		t.Fatalf("round trip: %+v != %+v", good, out)
	}

	bad := []Scenario{
		{},
		{Protocol: "x"},
		{Protocol: "x", Servers: []string{""}},
		{Protocol: "x", Servers: []string{"a", "a"}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) must fail", s)
		}
	}
}

func TestScenarioString(t *testing.T) {
	s := Scenario{Protocol: "cache", Servers: []string{"x:gos"}, Params: map[string]string{"ttl": "30s"}}
	got := s.String()
	if !strings.Contains(got, "cache") || !strings.Contains(got, "ttl=30s") {
		t.Fatalf("String() = %q", got)
	}
}

// counterSem is a minimal semantics subobject: a counter with one write
// method and one read method.
type counterSem struct {
	n int64
}

func (c *counterSem) Invoke(inv Invocation) ([]byte, error) {
	switch inv.Method {
	case "inc":
		c.n += int64(binary.BigEndian.Uint64(inv.Args))
		return nil, nil
	case "get":
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, uint64(c.n))
		return out, nil
	default:
		return nil, fmt.Errorf("counter: unknown method %q", inv.Method)
	}
}

func (c *counterSem) MarshalState() ([]byte, error) {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(c.n))
	return out, nil
}

func (c *counterSem) UnmarshalState(b []byte) error {
	if len(b) != 8 {
		return fmt.Errorf("counter: bad state length %d", len(b))
	}
	c.n = int64(binary.BigEndian.Uint64(b))
	return nil
}

func incArgs(delta int64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(delta))
	return b
}

// testProto is a minimal client/server protocol: replicas execute
// locally; proxies forward every invocation to the first server peer.
func testProto() *Protocol {
	return &Protocol{
		Name: "testproto",
		NewProxy: func(env *Env) (Replication, error) {
			servers := env.PeersWithRole("server")
			if len(servers) == 0 {
				return nil, errors.New("testproto: no server peer")
			}
			return &testProxy{peer: env.Dial(servers[0].Address)}, nil
		},
		NewReplica: func(env *Env) (Replication, error) {
			rep := &testReplica{env: env}
			env.Disp.Register(env.OID, rep.handle)
			return rep, nil
		},
	}
}

type testProxy struct {
	peer *PeerClient
}

func (p *testProxy) Invoke(inv Invocation) ([]byte, time.Duration, error) {
	return p.peer.Call(OpInvoke, inv.Encode())
}

func (p *testProxy) Close() error { return p.peer.Close() }

type testReplica struct {
	env *Env
}

func (r *testReplica) Invoke(inv Invocation) ([]byte, time.Duration, error) {
	out, err := r.env.Exec.Execute(inv)
	return out, 0, err
}

func (r *testReplica) Close() error {
	r.env.Disp.Unregister(r.env.OID)
	return nil
}

func (r *testReplica) handle(call *rpc.Call) ([]byte, error) {
	switch call.Op {
	case OpInvoke:
		inv, err := DecodeInvocation(call.Body)
		if err != nil {
			return nil, err
		}
		return r.env.Exec.Execute(inv)
	case OpStateGet:
		return r.env.Exec.MarshalState()
	default:
		return nil, fmt.Errorf("testproto: op %d", call.Op)
	}
}

// world assembles network + GLS + two runtimes (server site, client
// site) with the counter implementation registered.
type world struct {
	net      *netsim.Network
	tree     *gls.Tree
	serverRT *Runtime
	clientRT *Runtime
	disp     *Dispatcher
}

func newWorld(t *testing.T) *world {
	t.Helper()
	net := netsim.New(nil)
	net.AddSite("hub", "hub", "core")
	net.AddSite("server-site", "eu-nl", "eu")
	net.AddSite("client-site", "us-ca", "us")

	tree, err := gls.Deploy(net, gls.DomainSpec{
		Name: "root", Sites: []string{"hub"},
		Children: []gls.DomainSpec{
			gls.Leaf("eu", "server-site"),
			gls.Leaf("us", "client-site"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)

	reg := NewRegistry()
	reg.RegisterSemantics("counter/1", func() Semantics { return &counterSem{} })
	reg.RegisterProtocol(testProto())

	serverRes, err := tree.Resolver("server-site", "eu")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { serverRes.Close() })
	clientRes, err := tree.Resolver("client-site", "us")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clientRes.Close() })

	disp, err := NewDispatcher(net, "server-site", "server-site:objects", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disp.Close() })

	return &world{
		net:  net,
		tree: tree,
		serverRT: NewRuntime(RuntimeConfig{
			Site: "server-site", Net: net, Resolver: serverRes, Registry: reg,
		}),
		clientRT: NewRuntime(RuntimeConfig{
			Site: "client-site", Net: net, Resolver: clientRes, Registry: reg,
		}),
		disp: disp,
	}
}

// createCounter hosts a counter replica and registers it in the GLS.
func (w *world) createCounter(t *testing.T) (ids.OID, *LR) {
	t.Helper()
	oid := ids.New()
	lr, ca, err := w.serverRT.NewReplica(ReplicaSpec{
		OID: oid, Impl: "counter/1", Protocol: "testproto", Role: "server",
	}, w.disp)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lr.Close() })
	if _, _, err := w.serverRT.Resolver().Insert(oid, ca); err != nil {
		t.Fatal(err)
	}
	return oid, lr
}

func TestBindAndInvokeEndToEnd(t *testing.T) {
	w := newWorld(t)
	oid, _ := w.createCounter(t)

	proxy, bindCost, err := w.clientRT.Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	if bindCost <= 0 {
		t.Fatal("bind must report the location lookup cost")
	}

	if _, _, err := proxy.Invoke("inc", true, incArgs(41)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := proxy.Invoke("inc", true, incArgs(1)); err != nil {
		t.Fatal(err)
	}
	out, cost, err := proxy.Invoke("get", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(binary.BigEndian.Uint64(out)); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if cost <= 0 {
		t.Fatal("remote invocation must report network cost")
	}
}

func TestBindUnknownObject(t *testing.T) {
	w := newWorld(t)
	if _, _, err := w.clientRT.Bind(ids.Derive("ghost")); !errors.Is(err, gls.ErrNotFound) {
		t.Fatalf("err = %v, want gls.ErrNotFound", err)
	}
}

func TestBindMissingImplementation(t *testing.T) {
	w := newWorld(t)
	oid := ids.New()
	// Register a contact address naming an implementation the client
	// does not hold.
	ca := gls.ContactAddress{Protocol: "testproto", Address: "server-site:objects", Impl: "exotic/9", Role: "server"}
	if _, _, err := w.serverRT.Resolver().Insert(oid, ca); err != nil {
		t.Fatal(err)
	}
	_, _, err := w.clientRT.Bind(oid)
	if !errors.Is(err, ErrNoImplementation) {
		t.Fatalf("err = %v, want ErrNoImplementation", err)
	}
}

func TestBindMissingProtocol(t *testing.T) {
	w := newWorld(t)
	oid := ids.New()
	ca := gls.ContactAddress{Protocol: "exoticproto", Address: "server-site:objects", Impl: "counter/1", Role: "server"}
	if _, _, err := w.serverRT.Resolver().Insert(oid, ca); err != nil {
		t.Fatal(err)
	}
	_, _, err := w.clientRT.Bind(oid)
	if !errors.Is(err, ErrNoProtocol) {
		t.Fatalf("err = %v, want ErrNoProtocol", err)
	}
}

func TestReplicaSeedState(t *testing.T) {
	w := newWorld(t)
	oid := ids.New()
	seed := &counterSem{n: 7}
	state, err := seed.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	lr, ca, err := w.serverRT.NewReplica(ReplicaSpec{
		OID: oid, Impl: "counter/1", Protocol: "testproto", Role: "server",
		InitState: state,
	}, w.disp)
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Close()
	if _, _, err := w.serverRT.Resolver().Insert(oid, ca); err != nil {
		t.Fatal(err)
	}

	proxy, _, err := w.clientRT.Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	out, _, err := proxy.Invoke("get", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(binary.BigEndian.Uint64(out)); got != 7 {
		t.Fatalf("seeded counter = %d, want 7", got)
	}
}

func TestInvokeAfterCloseFails(t *testing.T) {
	w := newWorld(t)
	oid, _ := w.createCounter(t)
	proxy, _, err := w.clientRT.Bind(oid)
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := proxy.Invoke("get", false, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Closing twice is harmless.
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDispatcherDemultiplexesObjects(t *testing.T) {
	w := newWorld(t)
	oidA, _ := w.createCounter(t)
	oidB, _ := w.createCounter(t)

	pa, _, err := w.clientRT.Bind(oidA)
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	pb, _, err := w.clientRT.Bind(oidB)
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Close()

	if _, _, err := pa.Invoke("inc", true, incArgs(5)); err != nil {
		t.Fatal(err)
	}
	out, _, err := pb.Invoke("get", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(binary.BigEndian.Uint64(out)); got != 0 {
		t.Fatalf("object B saw object A's write: %d", got)
	}
	if w.disp.Objects() != 2 {
		t.Fatalf("dispatcher objects = %d", w.disp.Objects())
	}
}

func TestDispatcherRejectsUnknownObject(t *testing.T) {
	w := newWorld(t)
	peer := DialPeer(w.net, "client-site", ids.Derive("unknown"), w.disp.Addr(), nil)
	defer peer.Close()
	if _, _, err := peer.Call(OpInvoke, Invocation{Method: "get"}.Encode()); err == nil {
		t.Fatal("unknown object must be rejected")
	}
}

func TestDispatcherRejectsShortBody(t *testing.T) {
	w := newWorld(t)
	cl := rpc.NewClient(w.net, "client-site", w.disp.Addr())
	defer cl.Close()
	if _, _, err := cl.Call(OpInvoke, []byte("short")); err == nil {
		t.Fatal("truncated replica message must be rejected")
	}
}

func TestLocalExecSerializesAccess(t *testing.T) {
	sem := &counterSem{}
	exec := NewLocalExec(sem)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := exec.Execute(Invocation{Method: "inc", Write: true, Args: incArgs(1)}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	out, err := exec.Execute(Invocation{Method: "get"})
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(binary.BigEndian.Uint64(out)); got != 50 {
		t.Fatalf("counter = %d, want 50 (lost updates)", got)
	}
}

func TestRegistryErrors(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.NewSemantics("none"); !errors.Is(err, ErrNoImplementation) {
		t.Fatalf("err = %v", err)
	}
	if _, err := reg.Protocol("none"); !errors.Is(err, ErrNoProtocol) {
		t.Fatalf("err = %v", err)
	}
	reg.RegisterProtocol(&Protocol{Name: "b"})
	reg.RegisterProtocol(&Protocol{Name: "a"})
	if got := reg.Protocols(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("Protocols() = %v", got)
	}
}

func TestCostFlowsThroughDispatcher(t *testing.T) {
	// A handler that charges nested cost must surface it to the caller
	// through the dispatcher's demux copy.
	w := newWorld(t)
	oid := ids.New()
	w.disp.Register(oid, func(call *rpc.Call) ([]byte, error) {
		call.Charge(123 * time.Millisecond)
		return nil, nil
	})
	defer w.disp.Unregister(oid)

	peer := DialPeer(w.net, "client-site", oid, w.disp.Addr(), nil)
	defer peer.Close()
	_, cost, err := peer.Call(OpInvoke, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cost < 123*time.Millisecond {
		t.Fatalf("cost = %v, must include the handler's 123ms charge", cost)
	}
}

func TestEnvParamAndPeersWithRole(t *testing.T) {
	env := &Env{
		Params: map[string]string{"ttl": "30"},
		Peers: []gls.ContactAddress{
			{Role: "master", Address: "m:1"},
			{Role: "slave", Address: "s:1"},
			{Role: "slave", Address: "s:2"},
		},
	}
	if env.Param("ttl", "60") != "30" || env.Param("missing", "60") != "60" {
		t.Fatal("Param defaults broken")
	}
	if got := env.PeersWithRole("slave"); len(got) != 2 {
		t.Fatalf("slaves = %v", got)
	}
	if got := env.PeersWithRole("master"); len(got) != 1 || got[0].Address != "m:1" {
		t.Fatalf("masters = %v", got)
	}
}

func TestWriteReadScenarioField(t *testing.T) {
	s := Scenario{Protocol: "active", Servers: []string{"a:gos"}}
	w := wire.NewWriter(64)
	w.Str("before")
	WriteScenario(w, s)
	w.Str("after")

	r := wire.NewReader(w.Bytes())
	if r.Str() != "before" {
		t.Fatal("prefix lost")
	}
	got, err := ReadScenario(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Protocol != "active" {
		t.Fatalf("scenario = %+v", got)
	}
	if r.Str() != "after" {
		t.Fatal("suffix lost")
	}
}

package core

import (
	"fmt"
	"sync"
	"time"

	"gdn/internal/ids"
	"gdn/internal/obs"
	"gdn/internal/rpc"
	"gdn/internal/sec"
	"gdn/internal/transport"
	"gdn/internal/wire"
)

// Replica protocol operations: the standard message vocabulary between
// the local representatives of one object. Every replication protocol
// composes its behaviour from these; the bodies (beyond the leading
// object identifier) are opaque to the communication layer.
const (
	// OpInvoke carries an invocation to a remote representative for
	// execution under its protocol role.
	OpInvoke uint16 = 0x10 + iota
	// OpStateGet fetches the full marshalled semantics state; used to
	// initialize new replicas and fill caches.
	OpStateGet
	// OpStatePush replaces the receiver's state with the attached
	// snapshot; masters push to slaves with it.
	OpStatePush
	// OpApply executes an already-ordered write invocation on a peer
	// replica; the active-replication protocol fans writes out with it.
	OpApply
	// OpInvalidate tells the receiver its local state is stale; caches
	// drop their copy.
	OpInvalidate
	// OpSubscribe announces a representative to a peer that must keep it
	// consistent: slaves and invalidation-mode caches subscribe to their
	// master or server. The body names the subscriber's address and role.
	OpSubscribe
	// OpUnsubscribe withdraws a subscription on teardown.
	OpUnsubscribe
	// OpChunkGet fetches content chunks by their store refs; the delta
	// state transfer asks a parent for exactly the chunks the local
	// store is missing.
	OpChunkGet
	// OpBulkRead opens a streaming read of one bulk item (a package
	// file): the response arrives as a sequence of chunk-sized frames
	// with the item's size and digest as the trailer.
	OpBulkRead
	// OpChunkHave is the which-of-these-do-you-have negotiation: the
	// body carries content refs, the response the subset the receiver's
	// store lacks. Writers ask before shipping chunk bodies, so a
	// re-deploy of mostly-unchanged content uploads only what changed.
	OpChunkHave
	// OpChunkPut uploads content chunks into the receiver's store ahead
	// of a manifest write that names them. It is an upload-stream call
	// (one chunk per data frame); chunks are verified against their
	// content address on arrival and sit unreferenced until a manifest
	// pins them.
	OpChunkPut
)

// Dispatcher is the listening half of the communication subobject: one
// transport endpoint multiplexing replica traffic for every object
// hosted in this address space. Real deployments run one dispatcher per
// object server or GDN HTTPD; the object identifier prefixed to every
// message picks the local representative.
type Dispatcher struct {
	site   string
	server *rpc.Server

	mu      sync.RWMutex
	objects map[ids.OID]rpc.Handler
}

// NewDispatcher starts a dispatcher on addr. When auth is non-nil every
// inbound connection is upgraded to a security channel; handlers see
// the authenticated peer in Call.Peer and enforce role checks (§6.1).
func NewDispatcher(net transport.Network, site, addr string, auth *sec.Config, logf func(string, ...any)) (*Dispatcher, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	d := &Dispatcher{site: site, objects: make(map[ids.OID]rpc.Handler)}
	opts := []rpc.ServerOption{rpc.WithServerLog(logf)}
	if auth != nil {
		opts = append(opts, rpc.WithServerWrapper(auth.WrapServer))
	}
	srv, err := rpc.Serve(net, addr, d.dispatch, opts...)
	if err != nil {
		return nil, err
	}
	d.server = srv
	return d, nil
}

// Addr returns the dispatcher's transport address: the address part of
// every contact address for representatives hosted here.
func (d *Dispatcher) Addr() string { return d.server.Addr() }

// Site returns the hosting site.
func (d *Dispatcher) Site() string { return d.site }

// Register installs the handler for one object's replica traffic.
func (d *Dispatcher) Register(oid ids.OID, h rpc.Handler) {
	d.mu.Lock()
	d.objects[oid] = h
	d.mu.Unlock()
}

// Unregister removes an object's handler.
func (d *Dispatcher) Unregister(oid ids.OID) {
	d.mu.Lock()
	delete(d.objects, oid)
	d.mu.Unlock()
}

// Objects returns the number of registered objects.
func (d *Dispatcher) Objects() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.objects)
}

// Close stops the endpoint.
func (d *Dispatcher) Close() error { return d.server.Close() }

// dispatch strips the object identifier and routes to the registered
// handler with the remaining body.
func (d *Dispatcher) dispatch(call *rpc.Call) ([]byte, error) {
	r := wire.NewReader(call.Body)
	oid := r.OID()
	if r.Err() != nil {
		return nil, fmt.Errorf("core: replica message without object identifier")
	}
	d.mu.RLock()
	h := d.objects[oid]
	d.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("core: no representative for object %s here", oid.Short())
	}
	inner := *call
	inner.Body = call.Body[ids.Size:]
	resp, err := h(&inner)
	// Nested costs charged by the handler accumulated on the copy; flow
	// them to the outer call so the client sees the full call tree.
	call.Charge(inner.Cost() - call.Cost())
	return resp, err
}

// PeerClient is the dialing half of the communication subobject: a
// connection to one remote dispatcher, speaking the replica protocol
// for one object.
type PeerClient struct {
	oid ids.OID
	rpc *rpc.Client
}

// DialPeer connects to the dispatcher at addr on behalf of object oid.
// auth supplies client credentials for authenticated deployments.
func DialPeer(net transport.Network, site string, oid ids.OID, addr string, auth *sec.Config) *PeerClient {
	// Up to four shared connections per peer: a single conn's pipeline
	// window saturates under many concurrent bulk streams (each stream
	// occupies an in-flight slot for its whole transfer), and extra
	// conns are dialed lazily only at that point — light peers still
	// use exactly one.
	opts := []rpc.ClientOption{rpc.WithMaxConns(4)}
	if auth != nil {
		opts = append(opts, rpc.WithClientWrapper(auth.WrapClient))
	}
	return &PeerClient{oid: oid, rpc: rpc.NewClient(net, site, addr, opts...)}
}

// Addr returns the remote dispatcher address.
func (p *PeerClient) Addr() string { return p.rpc.Addr() }

// Call sends one replica-protocol operation, prefixing the object
// identifier.
func (p *PeerClient) Call(op uint16, body []byte) ([]byte, time.Duration, error) {
	return p.CallT(obs.SpanContext{}, op, body)
}

// CallT is Call carrying a trace context into the RPC layer, so a
// replica-protocol hop joins the caller's trace.
func (p *PeerClient) CallT(tc obs.SpanContext, op uint16, body []byte) ([]byte, time.Duration, error) {
	buf := make([]byte, 0, ids.Size+len(body))
	buf = append(buf, p.oid[:]...)
	buf = append(buf, body...)
	return p.rpc.CallT(tc, op, buf)
}

// CallStream opens a streaming replica-protocol call (OpBulkRead),
// prefixing the object identifier.
func (p *PeerClient) CallStream(op uint16, body []byte) (*rpc.Stream, error) {
	return p.CallStreamT(obs.SpanContext{}, op, body)
}

// CallStreamT is CallStream carrying a trace context.
func (p *PeerClient) CallStreamT(tc obs.SpanContext, op uint16, body []byte) (*rpc.Stream, error) {
	buf := make([]byte, 0, ids.Size+len(body))
	buf = append(buf, p.oid[:]...)
	buf = append(buf, body...)
	return p.rpc.CallStreamT(tc, op, buf)
}

// CallUpload opens an upload-stream replica-protocol call
// (OpChunkPut), prefixing the object identifier to the header.
func (p *PeerClient) CallUpload(op uint16, header []byte) (*rpc.UploadStream, error) {
	return p.CallUploadT(obs.SpanContext{}, op, header)
}

// CallUploadT is CallUpload carrying a trace context.
func (p *PeerClient) CallUploadT(tc obs.SpanContext, op uint16, header []byte) (*rpc.UploadStream, error) {
	buf := make([]byte, 0, ids.Size+len(header))
	buf = append(buf, p.oid[:]...)
	buf = append(buf, header...)
	return p.rpc.CallUploadT(tc, op, buf)
}

// Close releases the connection.
func (p *PeerClient) Close() error { return p.rpc.Close() }

package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/sec"
	"gdn/internal/store"
	"gdn/internal/transport"
)

// Env is everything a replication subobject needs from its hosting
// address space: the object it serves, local execution, the
// communication endpoint, and the protocol parameters from the
// object's replication scenario.
type Env struct {
	// OID identifies the distributed shared object.
	OID ids.OID
	// Site is the hosting site.
	Site string
	// Net is the transport network for peer communication.
	Net transport.Network
	// Exec executes invocations against the co-resident semantics
	// subobject.
	Exec LocalExec
	// Disp is the listening endpoint; nil for pure client proxies that
	// are not contactable.
	Disp *Dispatcher
	// Auth supplies credentials for dialing peers and checking inbound
	// roles; nil disables security.
	Auth *sec.Config
	// Role is this representative's protocol role ("server", "master",
	// "slave", "peer", ...); "" for proxies.
	Role string
	// Params carries protocol tuning from the replication scenario.
	Params map[string]string
	// Peers holds the contact addresses of the object's other
	// representatives known at construction time (from the GLS during
	// binding, or from the moderator's scenario during creation).
	Peers []gls.ContactAddress
	// Resolve re-runs the location-service lookup that produced Peers.
	// Peer sets call it to discover replicas created after binding and
	// to age out dead ones — proxy-side sets always, and replica-side
	// sets such as the cache protocol's parent set. Nil (a runtime
	// without a resolver) disables re-resolution.
	Resolve func() ([]gls.ContactAddress, time.Duration, error)
	// Clock supplies the time for TTL-based consistency decisions; nil
	// means wall time. Simulations install virtual clocks here.
	Clock func() time.Time
	// Logf receives diagnostics; never nil after registry construction.
	Logf func(string, ...any)
	// Store is the chunk store backing the co-resident semantics' bulk
	// content; replication subobjects serve chunk fetches and bulk-read
	// streams from it and fill it during delta state transfer. Nil when
	// the semantics keeps no chunked content.
	Store *store.Store
}

// Now reads the environment clock.
func (e *Env) Now() time.Time {
	if e.Clock != nil {
		return e.Clock()
	}
	return time.Now()
}

// Param returns a scenario parameter or a default.
func (e *Env) Param(key, def string) string {
	if v, ok := e.Params[key]; ok {
		return v
	}
	return def
}

// Dial opens a peer connection for this object to a remote dispatcher.
func (e *Env) Dial(addr string) *PeerClient {
	return DialPeer(e.Net, e.Site, e.OID, addr, e.Auth)
}

// PeersWithRole filters the known contact addresses by protocol role.
func (e *Env) PeersWithRole(role string) []gls.ContactAddress {
	var out []gls.ContactAddress
	for _, ca := range e.Peers {
		if ca.Role == role {
			out = append(out, ca)
		}
	}
	return out
}

// Protocol describes one replication protocol: constructors for the
// proxy side (installed in binding clients) and the replica side
// (installed in object servers and GDN HTTPDs). This pairing is the
// unit a moderator selects in a replication scenario.
type Protocol struct {
	// Name identifies the protocol in contact addresses and scenarios.
	Name string
	// NewProxy builds the client-side replication subobject. env.Peers
	// holds the contact addresses the location service returned.
	NewProxy func(env *Env) (Replication, error)
	// NewReplica builds a hosted replica's replication subobject for
	// env.Role. It must register the object's inbound handler on
	// env.Disp and unregister it on Close.
	NewReplica func(env *Env) (Replication, error)
}

// Registry is the per-address-space implementation repository (§3.4):
// it maps implementation identifiers to semantics constructors and
// protocol names to subobject constructors. Binding loads from it the
// way the paper's runtime loads classes from a local repository —
// by-name indirection without executing foreign code (DESIGN.md §2).
type Registry struct {
	mu     sync.RWMutex
	sems   map[string]func() Semantics
	protos map[string]*Protocol
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		sems:   make(map[string]func() Semantics),
		protos: make(map[string]*Protocol),
	}
}

// RegisterSemantics installs a semantics constructor under an
// implementation identifier such as "pkgobj/1".
func (r *Registry) RegisterSemantics(impl string, f func() Semantics) {
	r.mu.Lock()
	r.sems[impl] = f
	r.mu.Unlock()
}

// RegisterProtocol installs a replication protocol.
func (r *Registry) RegisterProtocol(p *Protocol) {
	r.mu.Lock()
	r.protos[p.Name] = p
	r.mu.Unlock()
}

// NewSemantics instantiates the implementation named impl.
func (r *Registry) NewSemantics(impl string) (Semantics, error) {
	r.mu.RLock()
	f := r.sems[impl]
	r.mu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoImplementation, impl)
	}
	return f(), nil
}

// Protocol returns the registered protocol named name.
func (r *Registry) Protocol(name string) (*Protocol, error) {
	r.mu.RLock()
	p := r.protos[name]
	r.mu.RUnlock()
	if p == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoProtocol, name)
	}
	return p, nil
}

// Protocols lists registered protocol names, sorted; moderator tools
// present this as "the choice of available replication protocols"
// (§6.1).
func (r *Registry) Protocols() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.protos))
	for name := range r.protos {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

package core

import (
	"fmt"
	"time"

	"gdn/internal/store"
	"gdn/internal/wire"
)

// Chunk-negotiation wire shape, shared by the replica protocol
// (OpChunkHave) and the object-server command endpoint
// (gos.OpChunkHave): both carry a counted list of content refs in the
// request and the missing subset in the response.

// ChunkHaveMaxRefs bounds one negotiation request so bodies stay
// kilobytes even for very large packages; clients batch
// (MissingChunksVia does), servers reject bigger requests.
const ChunkHaveMaxRefs = 1024

// EncodeRefs serializes a counted ref list.
func EncodeRefs(refs []store.Ref) []byte {
	w := wire.NewWriter(8 + 32*len(refs))
	w.Count(len(refs))
	for _, ref := range refs {
		w.Hash(ref)
	}
	return w.Bytes()
}

// DecodeRefs reverses EncodeRefs. max > 0 rejects longer lists — the
// server-side guard on negotiation requests.
func DecodeRefs(body []byte, max int) ([]store.Ref, error) {
	r := wire.NewReader(body)
	n := r.Count()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if max > 0 && n > max {
		return nil, fmt.Errorf("core: chunk negotiation of %d refs exceeds the %d bound", n, max)
	}
	refs := make([]store.Ref, 0, n)
	for i := 0; i < n; i++ {
		refs = append(refs, r.Hash())
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return refs, nil
}

// MissingChunksVia runs the which-of-these-do-you-have negotiation in
// bounded batches through call (one request/response round per batch)
// and returns the union of missing refs with the accumulated virtual
// cost. Both negotiation clients — replica proxies and the GOS
// command client — are this function with their transport plugged in.
func MissingChunksVia(call func(body []byte) ([]byte, time.Duration, error), refs []store.Ref) ([]store.Ref, time.Duration, error) {
	var missing []store.Ref
	var total time.Duration
	for len(refs) > 0 {
		batch := refs
		if len(batch) > ChunkHaveMaxRefs {
			batch = batch[:ChunkHaveMaxRefs]
		}
		resp, cost, err := call(EncodeRefs(batch))
		total += cost
		if err != nil {
			return nil, total, err
		}
		got, err := DecodeRefs(resp, 0)
		if err != nil {
			return nil, total, err
		}
		missing = append(missing, got...)
		refs = refs[len(batch):]
	}
	return missing, total, nil
}

package core

import (
	"fmt"
	"sort"
	"strings"

	"gdn/internal/wire"
)

// Scenario is a replication scenario: "a specification of how (using
// what replication protocol) and where (which machines should host
// replicas) information or objects should be replicated" (§3.1).
// Moderators define one per object; the moderator tool turns it into
// create-replica commands for the listed object servers.
type Scenario struct {
	// Protocol names the replication protocol, e.g. "masterslave".
	Protocol string
	// Servers lists the object-server command addresses that should
	// host replicas. For master/slave protocols the first entry hosts
	// the master.
	Servers []string
	// Params tunes the protocol (cache TTLs, push fan-out, ...).
	Params map[string]string
}

// Validate checks structural soundness.
func (s Scenario) Validate() error {
	if s.Protocol == "" {
		return fmt.Errorf("core: scenario without protocol")
	}
	if len(s.Servers) == 0 {
		return fmt.Errorf("core: scenario without servers")
	}
	seen := make(map[string]bool, len(s.Servers))
	for _, srv := range s.Servers {
		if srv == "" {
			return fmt.Errorf("core: scenario with empty server address")
		}
		if seen[srv] {
			return fmt.Errorf("core: scenario lists server %q twice", srv)
		}
		seen[srv] = true
	}
	return nil
}

// String renders the scenario for logs and experiment tables.
func (s Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@[%s]", s.Protocol, strings.Join(s.Servers, ","))
	if len(s.Params) > 0 {
		keys := make([]string, 0, len(s.Params))
		for k := range s.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("{")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%s=%s", k, s.Params[k])
		}
		b.WriteString("}")
	}
	return b.String()
}

// Encode serializes the scenario for object-server commands and
// checkpoints.
func (s Scenario) Encode() []byte {
	w := wire.NewWriter(64)
	w.Str(s.Protocol)
	w.Count(len(s.Servers))
	for _, srv := range s.Servers {
		w.Str(srv)
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Count(len(keys))
	for _, k := range keys {
		w.Str(k)
		w.Str(s.Params[k])
	}
	return w.Bytes()
}

// DecodeScenario reverses Encode.
func DecodeScenario(b []byte) (Scenario, error) {
	r := wire.NewReader(b)
	s, err := readScenario(r)
	if err != nil {
		return Scenario{}, err
	}
	if err := r.Done(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// ReadScenario decodes a scenario field written by WriteScenario.
func ReadScenario(r *wire.Reader) (Scenario, error) {
	b := r.Bytes32()
	if r.Err() != nil {
		return Scenario{}, r.Err()
	}
	return DecodeScenario(b)
}

// WriteScenario encodes a scenario as one field of a larger message.
func WriteScenario(w *wire.Writer, s Scenario) {
	w.Bytes32(s.Encode())
}

func readScenario(r *wire.Reader) (Scenario, error) {
	var s Scenario
	s.Protocol = r.Str()
	n := r.Count()
	if r.Err() != nil {
		return Scenario{}, r.Err()
	}
	s.Servers = make([]string, 0, n)
	for i := 0; i < n; i++ {
		s.Servers = append(s.Servers, r.Str())
	}
	np := r.Count()
	if r.Err() != nil {
		return Scenario{}, r.Err()
	}
	if np > 0 {
		s.Params = make(map[string]string, np)
	}
	for i := 0; i < np; i++ {
		k := r.Str()
		s.Params[k] = r.Str()
	}
	return s, r.Err()
}

// Package core implements Globe's distributed shared object (DSO)
// framework: the paper's central abstraction (§3.2-3.4, Figure 1).
//
// A DSO is a single conceptual object physically distributed over many
// address spaces. In each participating address space it is represented
// by a local representative (LR) composed of four subobjects:
//
//   - the semantics subobject carries the application logic and state
//     (implemented by users of this package, e.g. internal/pkgobj);
//   - the control subobject bridges typed method calls and the standard
//     replication interface by marshalling calls into opaque invocation
//     messages;
//   - the replication subobject decides where invocations execute and
//     keeps replica state consistent; protocols live in internal/repl
//     and are selected per object — the property the whole paper turns
//     on;
//   - the communication subobject moves opaque messages between the
//     LRs of one object; here it is the Dispatcher/PeerClient pair
//     running over the rpc and transport layers.
//
// Replication and communication subobjects never interpret invocation
// contents: they see only opaque byte strings with a method identifier
// and a read/write classification, mirroring the paper's reflective
// design (§3.3).
//
// The Runtime implements binding (§3.4): given an object identifier it
// asks the Globe Location Service for contact addresses, loads the
// implementation named by the chosen address from the local Registry
// (the stand-in for remote class loading from an implementation
// repository), composes an LR, and returns it ready for invocations.
package core

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"gdn/internal/obs"
	"gdn/internal/store"
	"gdn/internal/wire"
)

// Errors reported by the DSO framework.
var (
	// ErrNoImplementation is returned when binding needs an
	// implementation the local registry does not hold.
	ErrNoImplementation = errors.New("core: implementation not in local registry")
	// ErrNoProtocol is returned for unknown replication protocols.
	ErrNoProtocol = errors.New("core: replication protocol not registered")
	// ErrClosed is returned by invocations on a closed representative.
	ErrClosed = errors.New("core: local representative is closed")
	// ErrNoBulk is returned when bulk (manifest) access is asked of a
	// semantics that does not store its content in a chunk store.
	ErrNoBulk = errors.New("core: semantics has no chunked bulk content")
)

// Invocation is one marshalled method call: the opaque unit that
// control, replication and communication subobjects pass around.
type Invocation struct {
	// Method is the method identifier from the object's interface.
	Method string
	// Args holds the marshalled parameters; the semantics subobject is
	// the only party that interprets them.
	Args []byte
	// Write classifies the method as state-modifying. The control
	// subobject sets it from the interface definition; replication
	// protocols route reads and writes differently, and servers enforce
	// write authorization on it (paper §6.1).
	Write bool
}

// Encode serializes the invocation.
func (inv Invocation) Encode() []byte {
	w := wire.NewWriter(16 + len(inv.Method) + len(inv.Args))
	w.Str(inv.Method)
	w.Bool(inv.Write)
	w.Bytes32(inv.Args)
	return w.Bytes()
}

// DecodeInvocation reverses Encode.
func DecodeInvocation(b []byte) (Invocation, error) {
	r := wire.NewReader(b)
	inv := Invocation{Method: r.Str(), Write: r.Bool(), Args: r.Bytes32()}
	if err := r.Done(); err != nil {
		return Invocation{}, err
	}
	return inv, nil
}

// Semantics is the semantics subobject: user-defined application logic
// written without any distribution or replication concerns (§3.3).
// Implementations need not be safe for concurrent use; the framework
// serializes access through LocalExec.
type Semantics interface {
	// Invoke executes one marshalled method against local state and
	// returns the marshalled result.
	Invoke(inv Invocation) ([]byte, error)
	// MarshalState serializes the full object state, used for replica
	// creation, state transfer between representatives, and object
	// server persistence.
	MarshalState() ([]byte, error)
	// UnmarshalState replaces local state with a marshalled snapshot.
	UnmarshalState(b []byte) error
}

// Manifest describes one bulk item (a package file): its ordered
// chunks in a content-addressed store, the total size, and the
// whole-content digest a reader verifies end to end (paper §6.1).
// Remote readers see only Size and Digest; Chunks stays local.
type Manifest struct {
	Chunks []store.Chunk
	Size   int64
	Digest [sha256.Size]byte
}

// Refs returns the manifest's chunk refs in order.
func (m Manifest) Refs() []store.Ref {
	out := make([]store.Ref, len(m.Chunks))
	for i, c := range m.Chunks {
		out[i] = c.Ref
	}
	return out
}

// ChunkSpan is one chunk's contribution to a byte range of a
// manifest: the index into Chunks plus the intra-chunk bounds [A, B)
// that fall inside the range.
type ChunkSpan struct {
	Index int
	A, B  int64
}

// ChunkRange resolves the byte range [off, off+n) of the manifest
// (n < 0 means to end) to the chunk spans covering it. This is the
// single copy of the range/clamp arithmetic behind local reads,
// streamed bulk reads and chunked GetFileChunk — prefetching serve
// loops plan their fetches from the spans.
func (m Manifest) ChunkRange(off, n int64) []ChunkSpan {
	if n < 0 {
		n = m.Size
	}
	if off < 0 {
		off = 0
	}
	end := off + n
	if end > m.Size {
		end = m.Size
	}
	var spans []ChunkSpan
	pos := int64(0)
	for i, c := range m.Chunks {
		if pos >= end {
			break
		}
		if pos+c.Size <= off {
			pos += c.Size
			continue
		}
		a, b := int64(0), c.Size
		if off > pos {
			a = off - pos
		}
		if pos+b > end {
			b = end - pos
		}
		spans = append(spans, ChunkSpan{Index: i, A: a, B: b})
		pos += c.Size
	}
	return spans
}

// WalkRange feeds fn the byte range [off, off+n) of the manifest's
// content out of st, chunk by chunk (n < 0 means to end). Slices are
// valid only during the callback — chunk bytes arrive through the
// store's zero-copy read (GetZC), so pooled disk-read buffers are
// recycled as soon as fn returns.
func (m Manifest) WalkRange(st *store.Store, off, n int64, fn func(p []byte) error) error {
	for _, sp := range m.ChunkRange(off, n) {
		c := m.Chunks[sp.Index]
		data, release, err := st.GetZC(c.Ref)
		if err != nil {
			return fmt.Errorf("core: bulk content lost chunk %s: %w", c.Ref.Short(), err)
		}
		if int64(len(data)) != c.Size {
			// The hash vouches for the bytes, not the manifest's claimed
			// length; never let a lying size drive slice arithmetic.
			if release != nil {
				release()
			}
			return fmt.Errorf("core: chunk %s is %d bytes, manifest claims %d", c.Ref.Short(), len(data), c.Size)
		}
		err = fn(data[sp.A:sp.B])
		if release != nil {
			release()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ChunkStored is implemented by semantics subobjects that keep bulk
// content in a content-addressed chunk store. The runtime injects the
// hosting process's shared store (an object server's durable store, a
// proxy cache's LRU store) before any state is seeded.
type ChunkStored interface {
	// UseStore re-homes the semantics onto st.
	UseStore(st *store.Store)
	// Store returns the store currently backing the semantics.
	Store() *store.Store
}

// BulkSource is the optional semantics interface behind streamed bulk
// reads: it maps a path to the manifest of its content. The returned
// manifest's chunks are retained in the store on the caller's behalf;
// the caller must Release them when done, so a concurrent write
// cannot delete chunks out from under an in-flight stream.
type BulkSource interface {
	FileManifest(path string) (Manifest, error)
}

// ChunkedState is the optional semantics interface for delta state
// transfer: a stateless parse of the chunk refs a marshalled state
// references, so a receiver can fetch exactly the chunks it lacks.
type ChunkedState interface {
	StateRefs(state []byte) ([]store.Ref, error)
}

// LocalExec gives replication subobjects serialized access to the
// semantics subobject co-resident in their LR.
type LocalExec interface {
	// Execute runs an invocation against the local semantics.
	Execute(inv Invocation) ([]byte, error)
	// MarshalState and UnmarshalState expose state transfer.
	MarshalState() ([]byte, error)
	UnmarshalState(b []byte) error
}

// BulkExec is the serialized counterpart of BulkSource; the standard
// LocalExec implementation provides it when the wrapped semantics
// does.
type BulkExec interface {
	FileManifest(path string) (Manifest, error)
}

// RefExec is the serialized counterpart of ChunkedState. A nil ref
// slice with nil error means the semantics does not chunk its state.
type RefExec interface {
	StateRefs(state []byte) ([]store.Ref, error)
}

// NewLocalExec wraps a semantics subobject with a mutex so the local
// client and inbound protocol traffic may run concurrently.
func NewLocalExec(sem Semantics) LocalExec {
	return &lockedExec{sem: sem}
}

type lockedExec struct {
	mu  sync.Mutex
	sem Semantics
}

func (le *lockedExec) Execute(inv Invocation) ([]byte, error) {
	le.mu.Lock()
	defer le.mu.Unlock()
	return le.sem.Invoke(inv)
}

func (le *lockedExec) MarshalState() ([]byte, error) {
	le.mu.Lock()
	defer le.mu.Unlock()
	return le.sem.MarshalState()
}

func (le *lockedExec) UnmarshalState(b []byte) error {
	le.mu.Lock()
	defer le.mu.Unlock()
	return le.sem.UnmarshalState(b)
}

func (le *lockedExec) FileManifest(path string) (Manifest, error) {
	bs, ok := le.sem.(BulkSource)
	if !ok {
		return Manifest{}, ErrNoBulk
	}
	le.mu.Lock()
	defer le.mu.Unlock()
	return bs.FileManifest(path)
}

func (le *lockedExec) StateRefs(state []byte) ([]store.Ref, error) {
	cs, ok := le.sem.(ChunkedState)
	if !ok {
		return nil, nil
	}
	// The parse is stateless; no lock needed.
	return cs.StateRefs(state)
}

// Replication is the replication subobject's standard interface. A
// proxy-side implementation forwards invocations to remote replicas; a
// replica-side implementation executes locally and keeps peers
// consistent. Implementations must be safe for concurrent use.
type Replication interface {
	// Invoke routes one invocation through the protocol and returns the
	// marshalled result plus the virtual network cost incurred.
	Invoke(inv Invocation) ([]byte, time.Duration, error)
	// Close detaches from peers and releases endpoints.
	Close() error
}

// BulkReader is the optional replication-subobject interface for
// streamed bulk reads: fn receives the byte range [off, off+n) of the
// named item in chunk-sized slices (n < 0 means to end of item), valid
// only during the callback. Replica-side implementations read their
// local store; proxy-side implementations open an OpBulkRead stream to
// a remote representative, so peak buffering is O(chunk) either way.
// The returned manifest carries at least the item's Size and Digest
// for end-to-end verification.
//
// tc is the caller's trace context: proxy-side implementations carry
// it across the OpBulkRead hop (and any cache-fill calls it forces)
// so a traced download's hop chain stays connected; the zero context
// means untraced and costs nothing.
type BulkReader interface {
	ReadBulk(tc obs.SpanContext, path string, off, n int64, fn func(p []byte) error) (Manifest, time.Duration, error)
}

// ChunkNegotiator is the optional replication-subobject interface
// behind negotiated bulk writes: the uploader asks which content
// chunks the write-target stores already have (OpChunkHave) and ships
// only the rest (OpChunkPut, an upload stream) before a
// manifest-bearing write names them. Proxies whose writes land on a
// single well-known replica (the clientserver server, the masterslave
// master) negotiate with that replica; active replication — whose
// writes replay at every peer — negotiates with all of them, reporting
// a chunk missing unless every replica holds it and shipping each
// replica exactly its own gap.
type ChunkNegotiator interface {
	// MissingChunks reports which of refs the write-target replica's
	// store lacks, deduplicated, in first-seen order.
	MissingChunks(refs []store.Ref) ([]store.Ref, time.Duration, error)
	// PushChunks uploads chunk bodies into the write-target replica's
	// store, where they sit unreferenced (and crash-sweepable) until a
	// manifest write pins them.
	PushChunks(chunks [][]byte) (time.Duration, error)
}

// Control is the control subobject: the bridge between an object's
// user-defined interfaces and the standard replication interface
// (§3.3). Typed stubs (the hand-written equivalent of the paper's
// IDL-generated code) marshal their parameters and call Invoke.
type Control struct {
	repl Replication

	mu     sync.Mutex
	closed bool
}

// NewControl returns a control subobject driving repl.
func NewControl(repl Replication) *Control {
	return &Control{repl: repl}
}

// Invoke marshals one method call and hands it to the replication
// subobject.
func (c *Control) Invoke(method string, write bool, args []byte) ([]byte, time.Duration, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, 0, fmt.Errorf("%w: invoking %s", ErrClosed, method)
	}
	return c.repl.Invoke(Invocation{Method: method, Args: args, Write: write})
}

// Close shuts the control and its replication subobject down.
func (c *Control) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.repl.Close()
}

// Package core implements Globe's distributed shared object (DSO)
// framework: the paper's central abstraction (§3.2-3.4, Figure 1).
//
// A DSO is a single conceptual object physically distributed over many
// address spaces. In each participating address space it is represented
// by a local representative (LR) composed of four subobjects:
//
//   - the semantics subobject carries the application logic and state
//     (implemented by users of this package, e.g. internal/pkgobj);
//   - the control subobject bridges typed method calls and the standard
//     replication interface by marshalling calls into opaque invocation
//     messages;
//   - the replication subobject decides where invocations execute and
//     keeps replica state consistent; protocols live in internal/repl
//     and are selected per object — the property the whole paper turns
//     on;
//   - the communication subobject moves opaque messages between the
//     LRs of one object; here it is the Dispatcher/PeerClient pair
//     running over the rpc and transport layers.
//
// Replication and communication subobjects never interpret invocation
// contents: they see only opaque byte strings with a method identifier
// and a read/write classification, mirroring the paper's reflective
// design (§3.3).
//
// The Runtime implements binding (§3.4): given an object identifier it
// asks the Globe Location Service for contact addresses, loads the
// implementation named by the chosen address from the local Registry
// (the stand-in for remote class loading from an implementation
// repository), composes an LR, and returns it ready for invocations.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gdn/internal/wire"
)

// Errors reported by the DSO framework.
var (
	// ErrNoImplementation is returned when binding needs an
	// implementation the local registry does not hold.
	ErrNoImplementation = errors.New("core: implementation not in local registry")
	// ErrNoProtocol is returned for unknown replication protocols.
	ErrNoProtocol = errors.New("core: replication protocol not registered")
	// ErrClosed is returned by invocations on a closed representative.
	ErrClosed = errors.New("core: local representative is closed")
)

// Invocation is one marshalled method call: the opaque unit that
// control, replication and communication subobjects pass around.
type Invocation struct {
	// Method is the method identifier from the object's interface.
	Method string
	// Args holds the marshalled parameters; the semantics subobject is
	// the only party that interprets them.
	Args []byte
	// Write classifies the method as state-modifying. The control
	// subobject sets it from the interface definition; replication
	// protocols route reads and writes differently, and servers enforce
	// write authorization on it (paper §6.1).
	Write bool
}

// Encode serializes the invocation.
func (inv Invocation) Encode() []byte {
	w := wire.NewWriter(16 + len(inv.Method) + len(inv.Args))
	w.Str(inv.Method)
	w.Bool(inv.Write)
	w.Bytes32(inv.Args)
	return w.Bytes()
}

// DecodeInvocation reverses Encode.
func DecodeInvocation(b []byte) (Invocation, error) {
	r := wire.NewReader(b)
	inv := Invocation{Method: r.Str(), Write: r.Bool(), Args: r.Bytes32()}
	if err := r.Done(); err != nil {
		return Invocation{}, err
	}
	return inv, nil
}

// Semantics is the semantics subobject: user-defined application logic
// written without any distribution or replication concerns (§3.3).
// Implementations need not be safe for concurrent use; the framework
// serializes access through LocalExec.
type Semantics interface {
	// Invoke executes one marshalled method against local state and
	// returns the marshalled result.
	Invoke(inv Invocation) ([]byte, error)
	// MarshalState serializes the full object state, used for replica
	// creation, state transfer between representatives, and object
	// server persistence.
	MarshalState() ([]byte, error)
	// UnmarshalState replaces local state with a marshalled snapshot.
	UnmarshalState(b []byte) error
}

// LocalExec gives replication subobjects serialized access to the
// semantics subobject co-resident in their LR.
type LocalExec interface {
	// Execute runs an invocation against the local semantics.
	Execute(inv Invocation) ([]byte, error)
	// MarshalState and UnmarshalState expose state transfer.
	MarshalState() ([]byte, error)
	UnmarshalState(b []byte) error
}

// NewLocalExec wraps a semantics subobject with a mutex so the local
// client and inbound protocol traffic may run concurrently.
func NewLocalExec(sem Semantics) LocalExec {
	return &lockedExec{sem: sem}
}

type lockedExec struct {
	mu  sync.Mutex
	sem Semantics
}

func (le *lockedExec) Execute(inv Invocation) ([]byte, error) {
	le.mu.Lock()
	defer le.mu.Unlock()
	return le.sem.Invoke(inv)
}

func (le *lockedExec) MarshalState() ([]byte, error) {
	le.mu.Lock()
	defer le.mu.Unlock()
	return le.sem.MarshalState()
}

func (le *lockedExec) UnmarshalState(b []byte) error {
	le.mu.Lock()
	defer le.mu.Unlock()
	return le.sem.UnmarshalState(b)
}

// Replication is the replication subobject's standard interface. A
// proxy-side implementation forwards invocations to remote replicas; a
// replica-side implementation executes locally and keeps peers
// consistent. Implementations must be safe for concurrent use.
type Replication interface {
	// Invoke routes one invocation through the protocol and returns the
	// marshalled result plus the virtual network cost incurred.
	Invoke(inv Invocation) ([]byte, time.Duration, error)
	// Close detaches from peers and releases endpoints.
	Close() error
}

// Control is the control subobject: the bridge between an object's
// user-defined interfaces and the standard replication interface
// (§3.3). Typed stubs (the hand-written equivalent of the paper's
// IDL-generated code) marshal their parameters and call Invoke.
type Control struct {
	repl Replication

	mu     sync.Mutex
	closed bool
}

// NewControl returns a control subobject driving repl.
func NewControl(repl Replication) *Control {
	return &Control{repl: repl}
}

// Invoke marshals one method call and hands it to the replication
// subobject.
func (c *Control) Invoke(method string, write bool, args []byte) ([]byte, time.Duration, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, 0, fmt.Errorf("%w: invoking %s", ErrClosed, method)
	}
	return c.repl.Invoke(Invocation{Method: method, Args: args, Write: write})
}

// Close shuts the control and its replication subobject down.
func (c *Control) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.repl.Close()
}

package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		data := []byte("the globe distribution network")
		ref, err := s.Put(data)
		if err != nil {
			t.Fatal(err)
		}
		if ref != RefOf(data) {
			t.Fatalf("ref mismatch")
		}
		got, err := s.Get(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("content mismatch (dir=%q)", dir)
		}
		if !s.Has(ref) {
			t.Fatal("Has = false after Put")
		}
		if _, err := s.Get(RefOf([]byte("absent"))); !errors.Is(err, ErrMissing) {
			t.Fatalf("Get(absent) = %v, want ErrMissing", err)
		}
	}
}

func TestPutRefRejectsMismatchedContent(t *testing.T) {
	s := Mem()
	if err := s.PutRef(RefOf([]byte("claimed")), []byte("actual")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("PutRef = %v, want ErrCorrupt", err)
	}
	if s.Stats().Chunks != 0 {
		t.Fatal("corrupt chunk was stored")
	}
}

func TestDedup(t *testing.T) {
	s := Mem()
	data := bytes.Repeat([]byte{7}, 1024)
	if _, err := s.Put(data); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(data); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Chunks != 1 || st.Dedup != 1 || st.Bytes != 1024 {
		t.Fatalf("stats = %+v, want 1 chunk, 1 dedup, 1024 bytes", st)
	}
}

func TestReleaseToZeroDeletesInPlainMode(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Put([]byte("ephemeral"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retain([]Ref{ref, ref}); err != nil {
		t.Fatal(err)
	}
	s.Release([]Ref{ref})
	if !s.Has(ref) {
		t.Fatal("chunk deleted while still referenced")
	}
	s.Release([]Ref{ref})
	if s.Has(ref) {
		t.Fatal("chunk survived release to zero in plain mode")
	}
	if _, err := os.Stat(s.path(ref)); !os.IsNotExist(err) {
		t.Fatalf("chunk file survived: %v", err)
	}
}

func TestRetainMissingIsAtomic(t *testing.T) {
	s := Mem()
	ref, _ := s.Put([]byte("present"))
	absent := RefOf([]byte("absent"))
	if err := s.Retain([]Ref{ref, absent}); !errors.Is(err, ErrMissing) {
		t.Fatalf("Retain = %v, want ErrMissing", err)
	}
	// The failed Retain must not have pinned the present chunk.
	s.Release([]Ref{ref})
	if !s.Has(ref) {
		t.Fatal("release of never-pinned chunk removed it")
	}
}

func TestCapacityEvictsColdLRU(t *testing.T) {
	s := Mem(WithCapacity(3 * 100))
	var refs []Ref
	for i := 0; i < 3; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 100)
		ref, _ := s.Put(data)
		refs = append(refs, ref)
	}
	// Touch chunk 0 so chunk 1 is the LRU victim.
	if _, err := s.Get(refs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(bytes.Repeat([]byte{9}, 100)); err != nil {
		t.Fatal(err)
	}
	if s.Has(refs[1]) {
		t.Fatal("LRU victim survived eviction")
	}
	if !s.Has(refs[0]) || !s.Has(refs[2]) {
		t.Fatal("recently used chunks were evicted")
	}
	if s.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Stats().Evictions)
	}
}

func TestCapacityNeverEvictsRetained(t *testing.T) {
	s := Mem(WithCapacity(100))
	pinned, _ := s.Put(bytes.Repeat([]byte{1}, 100))
	if err := s.Retain([]Ref{pinned}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(bytes.Repeat([]byte{2}, 100)); err != nil {
		t.Fatal(err)
	}
	if !s.Has(pinned) {
		t.Fatal("retained chunk was evicted")
	}
}

func TestPutPinnedAbovePinnedCapacity(t *testing.T) {
	// A cache store whose pinned working set already exceeds the
	// capacity must still accept pinned inserts (overshooting the
	// budget) — the insert may not evict itself or spin.
	s := Mem(WithCapacity(200))
	var pins []Ref
	for i := 0; i < 3; i++ {
		ref, err := s.PutPinned(bytes.Repeat([]byte{byte(i)}, 100))
		if err != nil {
			t.Fatal(err)
		}
		if !s.Has(ref) {
			t.Fatalf("pinned chunk %d evicted by its own insert", i)
		}
		pins = append(pins, ref)
	}
	if got := s.Stats().Bytes; got != 300 {
		t.Fatalf("pinned bytes = %d, want 300 (overshoot allowed)", got)
	}
	s.Release(pins)
	// With the pins gone, the capacity policy reclaims the overshoot.
	if got := s.Stats().Bytes; got > 200 {
		t.Fatalf("bytes after release = %d, want <= 200", got)
	}
}

func TestCacheModeKeepsReleasedChunks(t *testing.T) {
	s := Mem(WithCapacity(1 << 20))
	ref, _ := s.Put([]byte("cached content"))
	if err := s.Retain([]Ref{ref}); err != nil {
		t.Fatal(err)
	}
	s.Release([]Ref{ref})
	if !s.Has(ref) {
		t.Fatal("cache mode deleted a released chunk under capacity")
	}
}

func TestReopenIndexesAndSweepReclaimsOrphans(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := s.Put([]byte("kept across restart"))
	if err != nil {
		t.Fatal(err)
	}
	orphan, err := s.Put([]byte("orphaned by crash"))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash leaving a torn temporary file as well.
	tmp := filepath.Join(dir, keep.String()[:2], "deadbeef.tmp")
	if err := os.WriteFile(tmp, []byte("torn"), 0o600); err != nil {
		t.Fatal(err)
	}

	// "Reboot": a fresh store over the same directory.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(keep) || !s2.Has(orphan) {
		t.Fatal("reopen did not index surviving chunks")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("torn temporary file survived reopen")
	}
	// Recovery pins what its manifests reference, then sweeps.
	if err := s2.Retain([]Ref{keep}); err != nil {
		t.Fatal(err)
	}
	chunks, _ := s2.Sweep()
	if chunks != 1 {
		t.Fatalf("swept %d chunks, want 1", chunks)
	}
	if s2.Has(orphan) {
		t.Fatal("orphan survived sweep")
	}
	got, err := s2.Get(keep)
	if err != nil || !bytes.Equal(got, []byte("kept across restart")) {
		t.Fatalf("kept chunk unreadable after sweep: %v", err)
	}
}

func TestGetVerifiesDiskCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Put([]byte("pristine"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(ref), []byte("tampered"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ref); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get = %v, want ErrCorrupt", err)
	}
}

func TestMissing(t *testing.T) {
	s := Mem()
	have, _ := s.Put([]byte("have"))
	a := RefOf([]byte("a"))
	b := RefOf([]byte("b"))
	missing := s.Missing([]Ref{have, a, b, a, have})
	if len(missing) != 2 || missing[0] != a || missing[1] != b {
		t.Fatalf("Missing = %v", missing)
	}
}

func TestConcurrentPutRetainRelease(t *testing.T) {
	s := Mem(WithCapacity(64 << 10))
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				data := bytes.Repeat([]byte{byte(i % 16)}, 128)
				ref, err := s.Put(data)
				if err != nil {
					done <- err
					return
				}
				if err := s.Retain([]Ref{ref}); err != nil {
					done <- err
					return
				}
				if _, err := s.Get(ref); err != nil {
					done <- err
					return
				}
				s.Release([]Ref{ref})
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

package store

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Background scrubbing: disk chunks are written once and read rarely,
// which is exactly the access pattern under which silent media
// corruption goes unnoticed until a client's end-to-end digest check
// fails mid-download. The scrubber re-reads resident chunks at a
// bounded rate and verifies each against its content address — the
// address is self-certifying, so no separate checksum database is
// needed. A corrupt chunk is quarantined: its bytes move to
// <dir>/quarantine/ for post-mortem and the ref starts answering
// ErrMissing, so the next state transfer or cache fill that touches it
// fetches a fresh verified copy from a peer and heals the entry
// in place (the reference count of live manifests is preserved across
// the round trip).

// quarantineDir is the subdirectory corrupt chunk files are moved to.
// Its name is deliberately not two hex digits, so the recovery index
// never mistakes it for a fanout directory.
const quarantineDir = "quarantine"

// ScrubResult reports one scrubbing pass.
type ScrubResult struct {
	// Chunks and Bytes are how much content this pass verified.
	Chunks int
	Bytes  int64
	// Quarantined lists the refs found corrupt and moved aside.
	Quarantined []Ref
	// Wrapped reports that the pass reached the end of the ref space
	// and the next pass restarts from the beginning.
	Wrapped bool
}

// Scrub verifies up to limit bytes of disk-resident chunks against
// their content addresses, resuming where the previous pass stopped
// (refs are walked in ascending order, so bounded passes cover the
// whole store over time). limit <= 0 verifies everything resident.
// Corrupt chunks are quarantined. Memory-backed stores have nothing to
// scrub: their bytes were verified on Put and cannot rot.
func (s *Store) Scrub(limit int64) ScrubResult {
	var res ScrubResult
	if s.dir == "" {
		return res
	}

	refs := s.Refs()
	s.scrubMu.Lock()
	start := s.cursor
	started := s.scrubbed
	s.scrubMu.Unlock()

	sort.Slice(refs, func(i, j int) bool {
		return bytes.Compare(refs[i][:], refs[j][:]) < 0
	})
	// Resume strictly after the cursor; a fresh store starts at the
	// lowest ref.
	pos := 0
	if started {
		pos = sort.Search(len(refs), func(i int) bool {
			return bytes.Compare(refs[i][:], start[:]) > 0
		})
	}

	// Visit each resident ref at most once, starting at the cursor and
	// wrapping to the low end of the ref space.
	for n := 0; n < len(refs); n++ {
		if limit > 0 && res.Bytes >= limit {
			break
		}
		idx := (pos + n) % len(refs)
		if idx == len(refs)-1 {
			// Reached the top of the ref space: the next pass restarts
			// from the bottom.
			res.Wrapped = true
		}
		ref := refs[idx]
		size, corrupt := s.verifyDisk(ref)
		res.Chunks++
		res.Bytes += size
		if corrupt && s.quarantine(ref) {
			res.Quarantined = append(res.Quarantined, ref)
			mQuarantined.Inc()
		}
		s.scrubMu.Lock()
		s.cursor = ref
		s.scrubbed = true
		s.scrubMu.Unlock()
		s.scrubbedB.Add(size)
		mScrubbedBytes.Add(size)
	}
	return res
}

// verifyDisk re-reads one chunk file and checks it hashes to its name.
// A file that vanished is not corruption: eviction or Release raced
// the scrub.
func (s *Store) verifyDisk(ref Ref) (size int64, corrupt bool) {
	data, err := os.ReadFile(s.path(ref))
	if err != nil {
		return 0, false
	}
	return int64(len(data)), RefOf(data) != ref
}

// quarantine moves one corrupt chunk aside and marks its entry gone.
// Unreferenced chunks are simply dropped (nothing will miss them);
// referenced ones keep a placeholder entry so the pins of live
// manifests survive until a verified Put heals the ref. It reports
// whether the chunk was still resident.
func (s *Store) quarantine(ref Ref) bool {
	dst := filepath.Join(s.dir, quarantineDir, ref.String())
	if err := os.MkdirAll(filepath.Dir(dst), 0o700); err == nil {
		// Best effort: if the rename fails the file is deleted below via
		// dropLocked, losing the post-mortem copy but never the safety.
		os.Rename(s.path(ref), dst) //nolint:errcheck
	}

	sh := s.shardOf(ref)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.chunks[ref]
	if !ok || e.gone {
		return false
	}
	s.quarantined.Add(1)
	if e.refs == 0 {
		s.dropLocked(sh, ref, e)
		return true
	}
	if e.elem != nil {
		sh.cold.Remove(e.elem)
		e.elem = nil
	}
	s.bytes.Add(-e.size)
	e.size = 0
	e.data = nil
	e.gone = true
	sh.gone++
	return true
}

// StartScrubber launches a background goroutine that scrubs up to
// bytesPerPass of content every interval, and reports quarantined refs
// through onBad (nil discards them). It returns a stop function; the
// store must not be used after its stop function would race Close-like
// teardown, so hosts call stop before discarding the store. Starting a
// second scrubber stops the first.
func (s *Store) StartScrubber(interval time.Duration, bytesPerPass int64, onBad func([]Ref)) (stop func()) {
	if s.dir == "" || interval <= 0 {
		return func() {}
	}
	s.StopScrubber()

	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	s.scrubMu.Lock()
	s.scrubStop, s.scrubDone = stopCh, doneCh
	s.scrubMu.Unlock()

	go func() {
		defer close(doneCh)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				res := s.Scrub(bytesPerPass)
				if len(res.Quarantined) > 0 && onBad != nil {
					onBad(res.Quarantined)
				}
			}
		}
	}()
	return s.StopScrubber
}

// StopScrubber halts the background scrubber, waiting for an in-flight
// pass to finish. It is safe to call when none is running.
func (s *Store) StopScrubber() {
	s.scrubMu.Lock()
	stopCh, doneCh := s.scrubStop, s.scrubDone
	s.scrubStop, s.scrubDone = nil, nil
	s.scrubMu.Unlock()
	if stopCh == nil {
		return
	}
	close(stopCh)
	<-doneCh
}

package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// corruptOnDisk flips bytes in one chunk's backing file without the
// store noticing — the silent media corruption the scrubber exists to
// catch.
func corruptOnDisk(t *testing.T, s *Store, ref Ref) {
	t.Helper()
	p := s.path(ref)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("read chunk file: %v", err)
	}
	data[0] ^= 0xFF
	if err := os.WriteFile(p, data, 0o600); err != nil {
		t.Fatalf("corrupt chunk file: %v", err)
	}
}

func TestScrubDetectsAndQuarantines(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	good, err := s.PutPinned([]byte("good chunk"))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := s.PutPinned([]byte("bad chunk"))
	if err != nil {
		t.Fatal(err)
	}
	corruptOnDisk(t, s, bad)

	res := s.Scrub(-1)
	if res.Chunks != 2 {
		t.Fatalf("scrubbed %d chunks, want 2", res.Chunks)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0] != bad {
		t.Fatalf("quarantined %v, want [%s]", res.Quarantined, bad.Short())
	}
	if !res.Wrapped {
		t.Fatalf("full scrub did not report wrapping")
	}

	// The good chunk still reads; the bad one answers missing (not
	// corrupt: readers should repair by refetch, not give up).
	if _, err := s.Get(good); err != nil {
		t.Fatalf("good chunk unreadable after scrub: %v", err)
	}
	if _, err := s.Get(bad); !errors.Is(err, ErrMissing) {
		t.Fatalf("quarantined chunk Get = %v, want ErrMissing", err)
	}
	if s.Has(bad) {
		t.Fatalf("quarantined chunk reported present")
	}
	if missing := s.Missing([]Ref{good, bad}); len(missing) != 1 || missing[0] != bad {
		t.Fatalf("Missing = %v, want [%s]", missing, bad.Short())
	}
	if err := s.Retain([]Ref{bad}); !errors.Is(err, ErrMissing) {
		t.Fatalf("Retain of quarantined chunk = %v, want ErrMissing", err)
	}

	// The corpse is preserved for post-mortem.
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, bad.String())); err != nil {
		t.Fatalf("quarantine file: %v", err)
	}

	st := s.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("stats.Quarantined = %d, want 1", st.Quarantined)
	}
	if st.Chunks != 1 {
		t.Fatalf("stats.Chunks = %d, want 1 (placeholder must not count)", st.Chunks)
	}
}

func TestQuarantineHealPreservesPins(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	content := []byte("chunk that two manifests reference")
	ref, err := s.PutPinned(content)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retain([]Ref{ref}); err != nil { // second manifest
		t.Fatal(err)
	}

	corruptOnDisk(t, s, ref)
	if got := s.Scrub(-1); len(got.Quarantined) != 1 {
		t.Fatalf("scrub quarantined %d chunks, want 1", len(got.Quarantined))
	}

	// Repair: a verified Put heals the ref in place.
	if err := s.PutRef(ref, content); err != nil {
		t.Fatalf("healing put: %v", err)
	}
	if got, err := s.Get(ref); err != nil || !bytes.Equal(got, content) {
		t.Fatalf("healed chunk Get = %q, %v", got, err)
	}
	if s.Stats().Repaired != 1 {
		t.Fatalf("stats.Repaired = %d, want 1", s.Stats().Repaired)
	}

	// The two pre-corruption pins survived: the first release keeps the
	// chunk alive, the second drops it (plain store).
	s.Release([]Ref{ref})
	if !s.Has(ref) {
		t.Fatalf("chunk deleted while a manifest still pins it")
	}
	s.Release([]Ref{ref})
	if s.Has(ref) {
		t.Fatalf("chunk survived release to zero in plain mode")
	}
}

func TestQuarantinedPlaceholderReleasedToZeroDrops(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.PutPinned([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	corruptOnDisk(t, s, ref)
	s.Scrub(-1)
	s.Release([]Ref{ref})
	sh := s.shardOf(ref)
	sh.mu.Lock()
	_, resident := sh.chunks[ref]
	sh.mu.Unlock()
	if resident {
		t.Fatalf("placeholder entry survived release of its last pin")
	}
}

func TestScrubUnreferencedCorruptChunkIsDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithCapacity(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Put([]byte("cold corrupt chunk"))
	if err != nil {
		t.Fatal(err)
	}
	corruptOnDisk(t, s, ref)
	res := s.Scrub(-1)
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantined %d, want 1", len(res.Quarantined))
	}
	if s.Has(ref) {
		t.Fatalf("unreferenced corrupt chunk still resident")
	}
	sh := s.shardOf(ref)
	sh.mu.Lock()
	_, resident := sh.chunks[ref]
	sh.mu.Unlock()
	if resident {
		t.Fatalf("unreferenced corrupt chunk left a placeholder entry")
	}
}

func TestScrubBoundedPassesCoverStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var refs []Ref
	for i := 0; i < 8; i++ {
		ref, err := s.PutPinned(bytes.Repeat([]byte{byte(i)}, 100))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	// Each pass is budgeted one chunk (100 bytes); eight passes must
	// visit all eight chunks exactly once before wrapping.
	seen := 0
	for i := 0; i < 8; i++ {
		res := s.Scrub(1)
		seen += res.Chunks
		if res.Wrapped && i < 7 {
			t.Fatalf("pass %d wrapped early", i)
		}
	}
	if seen != 8 {
		t.Fatalf("8 bounded passes visited %d chunks, want 8", seen)
	}
	if got := s.Stats().Scrubbed; got != 800 {
		t.Fatalf("stats.Scrubbed = %d, want 800", got)
	}
}

func TestStartScrubberFindsCorruption(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.PutPinned([]byte("rotting"))
	if err != nil {
		t.Fatal(err)
	}
	corruptOnDisk(t, s, ref)

	found := make(chan []Ref, 1)
	stop := s.StartScrubber(time.Millisecond, -1, func(bad []Ref) {
		select {
		case found <- bad:
		default:
		}
	})
	defer stop()

	select {
	case bad := <-found:
		if len(bad) != 1 || bad[0] != ref {
			t.Fatalf("scrubber reported %v, want [%s]", bad, ref.Short())
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("background scrubber never reported the corrupt chunk")
	}
	stop()
	if _, err := s.Get(ref); !errors.Is(err, ErrMissing) {
		t.Fatalf("corrupt chunk Get = %v, want ErrMissing", err)
	}
}

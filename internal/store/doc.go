// Package store implements the content-addressed chunk store that
// backs bulk package content everywhere in the GDN: object servers
// persist replica state through it, GDN HTTPDs cache downloaded
// chunks in it, and the replication protocols ship only the chunks a
// receiver is missing because equal content always has the equal key.
//
// A chunk is an immutable byte string addressed by its SHA-256 digest
// (its Ref). Addressing by content gives three properties the paper
// asks of the GDN at once: identical content stored once no matter how
// many packages or versions reference it (packages "can be very
// large", §2), end-to-end integrity — a reader that verifies the
// digest cannot be served corrupted content by a replica or proxy
// (§6.1) — and cheap delta transfer, because a receiver can name
// exactly the chunks it lacks.
//
// # Ownership
//
// Chunks are reference counted. Retain pins a chunk on behalf of a
// manifest that names it (a package file, a tagged version, an object
// server's on-disk checkpoint); Release drops the pin. What happens
// when the count reaches zero depends on the store's mode:
//
//   - plain stores delete the chunk immediately — the store holds
//     exactly the content live manifests reference;
//   - cache stores (WithCapacity) keep released chunks on an LRU list
//     and evict from its cold end only when the capacity is exceeded.
//     This is the proxy-cache mode: a cache replica that drops its
//     state keeps the bytes around, so a later refill fetches only
//     chunks that were actually evicted.
//
// # Concurrency
//
// The index is striped across 16 shards keyed by the first byte of the
// ref (SHA-256 output is uniform, so the stripes balance for free):
// each shard has its own mutex, chunk table and cold LRU list, so
// concurrent downloads touching different chunks never serialize on
// one lock. The capacity bound is exact — a store-wide atomic byte
// counter — while eviction order is per-shard LRU visited round-robin,
// a deliberate approximation of global LRU that avoids any cross-shard
// ordering structure. Retain locks every shard its refs touch in index
// order (never nested with eviction's one-at-a-time locking), keeping
// its all-or-nothing promise exact.
//
// # Buffer ownership on the serve path
//
// Get copies, GetZC does not: GetZC returns the chunk bytes plus a
// release callback the caller must invoke exactly once when the slice
// is fully consumed. For memory stores the slice aliases the immutable
// resident bytes (release is nil); for disk stores the bytes land in a
// pooled read buffer that release recycles. The RPC stream layer
// carries that same (buffer, release) pair to the transport and fires
// release at write completion, so one chunk buffer travels
// store→rpc→wire with zero intermediate copies. OpenChunk goes one
// step further for disk chunks: it hands the transport an open file
// handle to splice (sendfile on TCP) — those bytes never enter user
// space, and in exchange they are not re-verified per read; the
// client's end-to-end digest check and the background scrubber carry
// the integrity guarantee on that path. Pipeline overlaps chunk
// fetches with sends, propagating ownership of unconsumed values to a
// drop callback so cancellation can never leak a pooled buffer.
//
// # Durability
//
// A disk-backed store (Open with a directory) writes each chunk to a
// temporary file, fsyncs it, and renames it into place, so a crash
// leaves either the whole chunk or nothing. Orphans from a crash —
// chunks written but never referenced by a durable manifest — are
// reclaimed by Sweep, which object servers run after recovery.
package store

package store

// Prefetch pipelining: the bulk read path is a strict
// fetch-chunk-then-send-chunk loop, which serializes storage latency
// (disk read, hash verify, or an upstream RPC) with wire latency.
// Pipeline overlaps them — a producer goroutine runs fetches up to
// depth results ahead while the consumer drains in order — so the
// slower of the two sides sets the pace instead of their sum. Both the
// OpBulkRead server loop and the cache-fill chunk fetcher ride it.

// Pipeline runs fetch for every index in [0, n), in order, up to depth
// results ahead of consume, which also runs in order on the calling
// goroutine. The first error from either side stops the pipeline and
// is returned.
//
// Fetched values may carry owned resources (pooled buffers, open file
// handles); drop is called for any fetched value that consume never
// received — on early error, every in-flight or buffered value is
// either consumed or dropped exactly once. A nil drop is allowed when
// values own nothing.
func Pipeline[T any](depth, n int, fetch func(i int) (T, error), consume func(i int, v T) error, drop func(v T)) error {
	if n <= 0 {
		return nil
	}
	if depth < 1 {
		depth = 1
	}
	type item struct {
		v   T
		err error
	}
	results := make(chan item, depth)
	cancel := make(chan struct{})
	go func() {
		defer close(results)
		for i := 0; i < n; i++ {
			v, err := fetch(i)
			if err == nil {
				mPrefetchFetched.Inc()
			}
			select {
			case results <- item{v: v, err: err}:
				if err != nil {
					return
				}
			case <-cancel:
				if err == nil && drop != nil {
					drop(v)
				}
				return
			}
		}
	}()
	defer func() {
		close(cancel)
		for it := range results {
			if it.err == nil && drop != nil {
				drop(it.v)
			}
		}
	}()
	for i := 0; i < n; i++ {
		var it item
		select {
		case it = <-results:
		default:
			// The consumer outran the producer: storage, not the wire,
			// is the bottleneck right now.
			mPrefetchStalls.Inc()
			it = <-results
		}
		if it.err != nil {
			return it.err
		}
		if err := consume(i, it.v); err != nil {
			return err
		}
	}
	return nil
}

package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPipelineDeliversInOrder(t *testing.T) {
	const n = 50
	var consumed []int
	err := Pipeline(4, n,
		func(i int) (int, error) { return i * 10, nil },
		func(i, v int) error {
			if v != i*10 {
				return fmt.Errorf("item %d carried %d", i, v)
			}
			consumed = append(consumed, i)
			return nil
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(consumed) != n {
		t.Fatalf("consumed %d of %d", len(consumed), n)
	}
	for i, got := range consumed {
		if got != i {
			t.Fatalf("out of order: position %d got item %d", i, got)
		}
	}
}

func TestPipelineBoundsLookahead(t *testing.T) {
	// The producer may run at most a bounded window past the consumer.
	// With the consumer parked on item 0, at most depth+2 fetches start:
	// one result in the consumer's hands, depth buffered, and one whose
	// send is parked on the full channel.
	const depth = 3
	const n = depth + 3
	fetched := make(chan int)
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- Pipeline(depth, n,
			func(i int) (int, error) { fetched <- i; return i, nil },
			func(i, v int) error { <-release; return nil },
			nil)
	}()
	for i := 0; i < depth+2; i++ {
		<-fetched
	}
	select {
	case i := <-fetched:
		t.Fatalf("fetch %d ran more than depth+2=%d ahead of the consumer", i, depth+2)
	default:
	}
	// A consumption opens a buffer slot and admits exactly the one
	// remaining fetch.
	release <- struct{}{}
	<-fetched
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPipelineConsumeErrorDropsInFlight(t *testing.T) {
	// Every fetched value must be consumed or dropped exactly once,
	// even when the consumer bails with fetches buffered and in flight.
	var fetchedN, droppedN, consumedN atomic.Int64
	bail := errors.New("consumer bails")
	err := Pipeline(4, 100,
		func(i int) (int, error) { fetchedN.Add(1); return i, nil },
		func(i, v int) error {
			consumedN.Add(1)
			if i == 5 {
				return bail
			}
			return nil
		},
		func(v int) { droppedN.Add(1) })
	if !errors.Is(err, bail) {
		t.Fatalf("err = %v, want the consumer's error", err)
	}
	if got := consumedN.Load() + droppedN.Load(); got != fetchedN.Load() {
		t.Fatalf("fetched %d but consumed %d + dropped %d = %d",
			fetchedN.Load(), consumedN.Load(), droppedN.Load(), got)
	}
}

func TestPipelineFetchErrorStops(t *testing.T) {
	boom := errors.New("fetch fails")
	var consumed, dropped atomic.Int64
	err := Pipeline(2, 100,
		func(i int) (int, error) {
			if i == 7 {
				return 0, boom
			}
			return i, nil
		},
		func(i, v int) error { consumed.Add(1); return nil },
		func(v int) { dropped.Add(1) })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the fetch error", err)
	}
	// Items 0..6 were fetched successfully; each was consumed or
	// dropped, never both, never neither.
	if got := consumed.Load() + dropped.Load(); got != 7 {
		t.Fatalf("consumed %d + dropped %d = %d, want 7", consumed.Load(), dropped.Load(), got)
	}
}

// TestServeChunkPathDoesNotAllocate pins the zero-copy claim with an
// allocation budget: after warmup, serving a resident chunk through
// GetZC (the hot path under every bulk stream) must not allocate —
// pooled read buffers recycle, and memory-store serves are by
// reference.
func TestServeChunkPathDoesNotAllocate(t *testing.T) {
	disk, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, chunkReadBuf)
	for i := range payload {
		payload[i] = byte(i)
	}
	refD, err := disk.PutPinned(payload)
	if err != nil {
		t.Fatal(err)
	}
	refM, err := mem.PutPinned(payload)
	if err != nil {
		t.Fatal(err)
	}

	serve := func(s *Store, ref Ref) {
		data, release, err := s.GetZC(ref)
		if err != nil || len(data) != len(payload) {
			t.Fatalf("GetZC: %d bytes, %v", len(data), err)
		}
		if release != nil {
			release()
		}
	}
	// Warm the pools (first disk read seeds the buffer pool entry).
	serve(disk, refD)

	if got := testing.AllocsPerRun(50, func() { serve(mem, refM) }); got > 0 {
		t.Errorf("memory-store GetZC allocates %.1f objects per serve, want 0", got)
	}
	// The disk path's budget admits the os.Open bookkeeping (a handful
	// of small objects) and the release closure; the 256 KiB data
	// buffer itself must come from the pool. A failure here means each
	// serve allocates the payload again — the regression this test
	// exists to catch.
	if got := testing.AllocsPerRun(50, func() { serve(disk, refD) }); got > 8 {
		t.Errorf("disk-store GetZC allocates %.1f objects per serve, want the pooled-buffer path (<=8)", got)
	}
}

// TestGetZCPooledBufferConcurrent hammers the pooled serve path from
// many goroutines to let the race detector check the buffer-ownership
// handoff: no two concurrent serves may observe each other's bytes.
func TestGetZCPooledBufferConcurrent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var refs []Ref
	for i := 0; i < 8; i++ {
		payload := make([]byte, 4096)
		for j := range payload {
			payload[j] = byte(i)
		}
		ref, err := s.PutPinned(payload)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				ref := refs[(g+k)%len(refs)]
				data, release, err := s.GetZC(ref)
				if err != nil {
					t.Errorf("GetZC: %v", err)
					return
				}
				want := byte((g + k) % len(refs))
				for _, b := range data {
					if b != want {
						t.Errorf("buffer cross-talk: got byte %d, want %d", b, want)
						break
					}
				}
				if release != nil {
					release()
				}
			}
		}(g)
	}
	wg.Wait()
}

package store

import "gdn/internal/obs"

// Registry handles for the content store. The per-instance Stats
// struct remains as a view for tests and experiments; these aggregate
// the same events across every store in the process.
var (
	mPutSeconds = obs.Default.Histogram("gdn_store_put_seconds",
		"chunk insert latency, content hashing and disk write included",
		obs.Seconds, obs.TimeBuckets)
	mPutBytes = obs.Default.Histogram("gdn_store_put_bytes",
		"chunk sizes entering the store", obs.Bytes, obs.SizeBuckets)
	mGetSeconds = obs.Default.Histogram("gdn_store_get_seconds",
		"chunk read latency, disk verification included",
		obs.Seconds, obs.TimeBuckets)
	mDedup = obs.Default.Counter("gdn_store_dedup_total",
		"puts that found their chunk already present")
	mEvictions = obs.Default.Counter("gdn_store_evictions_total",
		"chunks dropped by the capacity policy")
	mQuarantined = obs.Default.Counter("gdn_store_quarantined_total",
		"chunks the scrubber found corrupt on disk and moved aside")
	mRepaired = obs.Default.Counter("gdn_store_repaired_total",
		"quarantined chunks healed by a later put of the same content")
	mScrubbedBytes = obs.Default.Counter("gdn_store_scrubbed_bytes_total",
		"chunk bytes the scrubber has verified against their address")
)

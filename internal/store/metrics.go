package store

import "gdn/internal/obs"

// Registry handles for the content store. The per-instance Stats
// struct remains as a view for tests and experiments; these aggregate
// the same events across every store in the process.
var (
	mPutSeconds = obs.Default.Histogram("gdn_store_put_seconds",
		"chunk insert latency, content hashing and disk write included",
		obs.Seconds, obs.TimeBuckets)
	mPutBytes = obs.Default.Histogram("gdn_store_put_bytes",
		"chunk sizes entering the store", obs.Bytes, obs.SizeBuckets)
	mGetSeconds = obs.Default.Histogram("gdn_store_get_seconds",
		"chunk read latency, disk verification included",
		obs.Seconds, obs.TimeBuckets)
	mDedup = obs.Default.Counter("gdn_store_dedup_total",
		"puts that found their chunk already present")
	mEvictions = obs.Default.Counter("gdn_store_evictions_total",
		"chunks dropped by the capacity policy")
	mQuarantined = obs.Default.Counter("gdn_store_quarantined_total",
		"chunks the scrubber found corrupt on disk and moved aside")
	mRepaired = obs.Default.Counter("gdn_store_repaired_total",
		"quarantined chunks healed by a later put of the same content")
	mScrubbedBytes = obs.Default.Counter("gdn_store_scrubbed_bytes_total",
		"chunk bytes the scrubber has verified against their address")

	// Zero-copy serve counters: how chunk bytes left the store. A
	// zerocopy byte was served by reference to the immutable resident
	// buffer (memory stores); a pooled byte was read from disk into a
	// recycled buffer handed down the stack with an ownership-releasing
	// callback; a file open handed the transport a handle to splice
	// (sendfile) without the bytes entering user space at all.
	mServeZeroCopy = obs.Default.Counter("gdn_store_serve_zerocopy_bytes_total",
		"chunk bytes served by reference with no copy")
	mServePooled = obs.Default.Counter("gdn_store_serve_pooled_bytes_total",
		"chunk bytes read from disk into pooled, ownership-tracked buffers")
	mServeFileOpens = obs.Default.Counter("gdn_store_serve_file_opens_total",
		"chunk file handles handed to transports for splicing")

	// Prefetch pipeline counters: Pipeline fetches chunks ahead of the
	// consumer; a stall means the consumer outran the prefetcher (the
	// window or the backing read is the bottleneck, not the wire).
	mPrefetchFetched = obs.Default.Counter("gdn_store_prefetch_fetched_total",
		"items fetched ahead of their consumer by the prefetch pipeline")
	mPrefetchStalls = obs.Default.Counter("gdn_store_prefetch_stalls_total",
		"times a pipeline consumer had to wait for an in-flight fetch")
)

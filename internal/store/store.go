package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Ref is a chunk's content address: the SHA-256 of its bytes.
type Ref [sha256.Size]byte

// RefOf returns the content address of data.
func RefOf(data []byte) Ref { return sha256.Sum256(data) }

// String renders the full hex digest.
func (r Ref) String() string { return hex.EncodeToString(r[:]) }

// Short renders an abbreviated digest for logs.
func (r Ref) Short() string { return hex.EncodeToString(r[:6]) }

// Chunk is one manifest entry: a content address plus the chunk's
// length, so manifest holders can do offset arithmetic without
// touching chunk data.
type Chunk struct {
	Ref  Ref
	Size int64
}

// Errors reported by the store.
var (
	// ErrMissing is returned when a referenced chunk is not present.
	ErrMissing = errors.New("store: chunk not present")
	// ErrCorrupt is returned when on-disk chunk bytes no longer match
	// their content address.
	ErrCorrupt = errors.New("store: chunk bytes do not match their address")
	// ErrNotOnDisk is returned by OpenChunk when a chunk's bytes are not
	// a plain file a transport could splice (memory-backed store).
	ErrNotOnDisk = errors.New("store: chunk bytes not file-backed")
)

// Stats counts store effectiveness for experiments and tests.
type Stats struct {
	// Chunks and Bytes are the current resident totals.
	Chunks int
	Bytes  int64
	// Dedup counts Put calls that found their chunk already present.
	Dedup int64
	// Evictions counts chunks dropped by the capacity policy.
	Evictions int64
	// Quarantined counts chunks the scrubber found corrupt on disk and
	// moved aside (cumulative).
	Quarantined int64
	// Repaired counts quarantined chunks healed by a later Put
	// (cumulative).
	Repaired int64
	// Scrubbed counts bytes of chunk content the scrubber has verified
	// (cumulative).
	Scrubbed int64
}

// entry is the in-memory record of one chunk. data is nil for
// disk-resident chunks; elem is non-nil while the chunk sits on its
// shard's cold (refs == 0) LRU list. gone marks a quarantined chunk:
// the scrubber found its bytes corrupt and moved them aside, but live
// manifests still pin the ref, so the entry stays in the table —
// carrying the reference count across the repair — while behaving as
// absent to every reader until a fresh Put heals it.
type entry struct {
	size int64
	refs int
	data []byte
	elem *list.Element
	gone bool
}

// numShards stripes the index so concurrent readers on the bulk serve
// path do not serialize on one mutex. SHA-256 refs are uniformly
// distributed, so sharding by the first address byte balances for
// free. Must be a power of two.
const numShards = 16

// shard is one stripe of the index: its own mutex, chunk table and
// cold LRU list. Eviction order is per-shard LRU — globally an
// approximation of LRU, exact within a stripe — while the capacity
// bound itself stays exact via the store-wide byte counter.
type shard struct {
	mu     sync.Mutex
	chunks map[Ref]*entry
	cold   *list.List // refs == 0, front = most recently used
	gone   int        // quarantined placeholder entries in chunks
}

// Store is a content-addressed chunk store. The zero value is not
// usable; call Mem or Open. Stores are safe for concurrent use.
type Store struct {
	dir string
	cap int64

	shards [numShards]shard
	bytes  atomic.Int64 // resident content bytes across all shards

	// Cumulative counters, mirrored into the obs registry.
	dedup       atomic.Int64
	evictions   atomic.Int64
	quarantined atomic.Int64
	repaired    atomic.Int64
	scrubbedB   atomic.Int64

	// cursor is the scrubber's resume point: scrubbing walks refs in
	// ascending order and carries on where the previous pass stopped,
	// so a bounded pass still covers the whole store eventually.
	scrubMu  sync.Mutex
	cursor   Ref
	scrubbed bool // cursor is valid (a pass has started)

	scrubStop chan struct{} // non-nil while a background scrubber runs
	scrubDone chan struct{}
}

// shardOf returns the stripe owning ref.
func (s *Store) shardOf(ref Ref) *shard { return &s.shards[ref[0]&(numShards-1)] }

// Option configures a store.
type Option func(*Store)

// WithCapacity switches the store to cache mode: released chunks are
// kept (up to roughly capBytes of total content) and evicted least-
// recently-used first. Retained chunks are never evicted, so a live
// working set larger than the capacity simply overshoots it.
func WithCapacity(capBytes int64) Option {
	return func(s *Store) { s.cap = capBytes }
}

// Mem returns a memory-backed store.
func Mem(opts ...Option) *Store {
	s, _ := Open("", opts...)
	return s
}

// Open returns a store rooted at dir, creating the directory as
// needed and indexing any chunks a previous process left behind
// (recovery). An empty dir selects a memory-backed store.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{dir: dir}
	for i := range s.shards {
		s.shards[i].chunks = make(map[Ref]*entry)
		s.shards[i].cold = list.New()
	}
	for _, o := range opts {
		o(s)
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	if err := s.index(); err != nil {
		return nil, err
	}
	return s, nil
}

// index scans the directory for chunks left by a previous run. They
// enter the table unreferenced; recovery retains the ones its
// manifests name and Sweep reclaims the rest.
func (s *Store) index() error {
	fanouts, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, fo := range fanouts {
		if !fo.IsDir() || len(fo.Name()) != 2 {
			continue
		}
		sub := filepath.Join(s.dir, fo.Name())
		files, err := os.ReadDir(sub)
		if err != nil {
			return err
		}
		for _, f := range files {
			name := f.Name()
			b, err := hex.DecodeString(name)
			if err != nil || len(b) != sha256.Size {
				// Stray temporary or foreign file; a crash mid-write
				// leaves .tmp files here. Remove it.
				os.Remove(filepath.Join(sub, name))
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			var ref Ref
			copy(ref[:], b)
			sh := s.shardOf(ref)
			e := &entry{size: info.Size()}
			e.elem = sh.cold.PushBack(coldRef{ref})
			sh.chunks[ref] = e
			s.bytes.Add(e.size)
		}
	}
	return nil
}

// coldRef is the LRU list payload: the ref of a refs==0 chunk.
type coldRef struct{ ref Ref }

// path returns the on-disk location of one chunk, with a two-hex-digit
// fanout directory so no single directory grows unbounded.
func (s *Store) path(ref Ref) string {
	hexRef := ref.String()
	return filepath.Join(s.dir, hexRef[:2], hexRef)
}

// Put stores data under its content address and returns the address.
// Storing content that is already present is a cheap no-op (the
// content-addressing dedup). The chunk enters unreferenced; callers
// that hold it in a manifest must Retain it.
func (s *Store) Put(data []byte) (Ref, error) {
	ref := RefOf(data)
	return ref, s.putRef(ref, data, false)
}

// PutRef stores data that is claimed to have address ref, verifying
// the claim — the integrity gate every chunk received from the
// network passes through.
func (s *Store) PutRef(ref Ref, data []byte) error {
	return s.putRef(ref, data, false)
}

// PutPinned stores data with one reference already held, atomically
// with the insert — a pinned chunk can never be the victim of the
// eviction its own arrival triggers, even when the pinned working
// set already exceeds a cache store's capacity.
func (s *Store) PutPinned(data []byte) (Ref, error) {
	ref := RefOf(data)
	return ref, s.putRef(ref, data, true)
}

func (s *Store) putRef(ref Ref, data []byte, pin bool) error {
	start := time.Now()
	defer mPutSeconds.ObserveSince(start)
	mPutBytes.Observe(int64(len(data)))
	if RefOf(data) != ref {
		return fmt.Errorf("%w: got %d bytes hashing to %s, want %s",
			ErrCorrupt, len(data), RefOf(data).Short(), ref.Short())
	}
	sh := s.shardOf(ref)
	sh.mu.Lock()
	if e, ok := sh.chunks[ref]; ok && !e.gone {
		s.dedupLocked(sh, ref, e, pin)
		sh.mu.Unlock()
		return nil
	}
	sh.mu.Unlock()

	if s.dir != "" {
		if err := s.writeChunk(ref, data); err != nil {
			return err
		}
	}

	sh.mu.Lock()
	if e, ok := sh.chunks[ref]; ok {
		if e.gone {
			// Healing a quarantined chunk: the fresh (verified) bytes are
			// on disk again. The entry kept the reference count of every
			// manifest that still names the ref, so pins survive the
			// corruption-and-repair round trip.
			e.gone = false
			sh.gone--
			e.size = int64(len(data))
			if s.dir == "" {
				e.data = append([]byte(nil), data...)
			}
			s.bytes.Add(e.size)
			s.repaired.Add(1)
			mRepaired.Inc()
			if pin {
				e.refs++
			} else if e.refs == 0 && e.elem == nil {
				e.elem = sh.cold.PushFront(coldRef{ref})
			}
			sh.mu.Unlock()
			s.evict()
			return nil
		}
		// Raced with another Put of the same content.
		s.dedupLocked(sh, ref, e, pin)
		sh.mu.Unlock()
		return nil
	}
	e := &entry{size: int64(len(data))}
	if s.dir == "" {
		e.data = append([]byte(nil), data...)
	}
	if pin {
		e.refs = 1
	} else {
		e.elem = sh.cold.PushFront(coldRef{ref})
	}
	sh.chunks[ref] = e
	s.bytes.Add(e.size)
	sh.mu.Unlock()
	s.evict()
	return nil
}

// dedupLocked accounts a Put that found its chunk already present,
// taking the pin when asked. Caller holds sh.mu.
func (s *Store) dedupLocked(sh *shard, ref Ref, e *entry, pin bool) {
	s.dedup.Add(1)
	mDedup.Inc()
	if pin {
		if e.refs == 0 && e.elem != nil {
			sh.cold.Remove(e.elem)
			e.elem = nil
		}
		e.refs++
		return
	}
	sh.touchLocked(e)
	_ = ref
}

// writeChunk persists one chunk durably. Concurrent writers of the
// same content race benignly — the rename is atomic and the bytes
// identical.
func (s *Store) writeChunk(ref Ref, data []byte) error {
	return WriteFileSync(s.path(ref), data)
}

// WriteFileSync writes data durably at name: temporary file in the
// same directory, fsync, rename into place, then fsync the directory
// so the rename itself survives a crash. The store uses it for
// chunks; object servers use it for checkpoint manifests.
func WriteFileSync(name string, data []byte) error {
	dir := filepath.Dir(name)
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(name)+".tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), name); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // advisory; some filesystems refuse dir fsync
		d.Close()
	}
	return nil
}

// Get returns a chunk's bytes. Disk reads are verified against the
// content address, so a corrupted chunk file surfaces as ErrCorrupt
// rather than as silently wrong content. Callers must not modify the
// returned slice of a memory-backed store.
func (s *Store) Get(ref Ref) ([]byte, error) {
	data, release, err := s.GetZC(ref)
	if err != nil {
		return nil, err
	}
	if release == nil {
		return data, nil
	}
	// The caller keeps the slice indefinitely under Get's contract, so
	// a pooled read buffer must be copied out before recycling.
	out := append([]byte(nil), data...)
	release()
	return out, nil
}

// chunkReadBuf sizes the pooled read buffers for disk chunk serves:
// one canonical 256 KiB content chunk. Larger (non-canonical) chunks
// fall back to a plain allocation.
const chunkReadBuf = 256 << 10

// readBufPool recycles disk-read buffers across GetZC calls, so a
// replica streaming a large file allocates no per-chunk buffers.
var readBufPool = sync.Pool{New: func() any {
	b := make([]byte, chunkReadBuf)
	return &b
}}

// GetZC returns a chunk's bytes without copying when possible, plus a
// release function (possibly nil) the caller must invoke exactly once
// when it is completely done with the slice. For memory-backed stores
// the slice aliases the immutable resident bytes and release is nil;
// for disk-backed stores the bytes are read into a pooled buffer that
// release recycles. Disk reads are verified against the content
// address exactly like Get. The slice must be treated as read-only
// and must not be used after release.
func (s *Store) GetZC(ref Ref) (data []byte, release func(), err error) {
	start := time.Now()
	defer mGetSeconds.ObserveSince(start)
	sh := s.shardOf(ref)
	sh.mu.Lock()
	e, ok := sh.chunks[ref]
	if !ok || e.gone {
		sh.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %s", ErrMissing, ref.Short())
	}
	sh.touchLocked(e)
	mem := e.data
	size := e.size
	sh.mu.Unlock()
	if mem != nil {
		mServeZeroCopy.Add(int64(len(mem)))
		return mem, nil, nil
	}

	f, err := os.Open(s.path(ref))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %s: %v", ErrMissing, ref.Short(), err)
	}
	var bp *[]byte
	var buf []byte
	if size <= chunkReadBuf {
		bp = readBufPool.Get().(*[]byte)
		buf = (*bp)[:size]
	} else {
		buf = make([]byte, size)
	}
	_, err = io.ReadFull(f, buf)
	f.Close()
	if err != nil {
		if bp != nil {
			readBufPool.Put(bp)
		}
		return nil, nil, fmt.Errorf("%w: %s: %v", ErrMissing, ref.Short(), err)
	}
	if RefOf(buf) != ref {
		if bp != nil {
			readBufPool.Put(bp)
		}
		return nil, nil, fmt.Errorf("%w: %s", ErrCorrupt, ref.Short())
	}
	mServePooled.Add(size)
	if bp == nil {
		return buf, nil, nil
	}
	return buf, func() { readBufPool.Put(bp) }, nil
}

// OpenChunk returns an open handle on a chunk's backing file plus its
// size, so transports that can splice files (sendfile on TCP) serve
// the bytes without them ever entering user space. Ownership of the
// handle passes to the caller.
//
// The bytes are deliberately NOT re-verified against the content
// address on this path — that would require reading them, defeating
// the splice. Integrity is still covered twice over: the client
// verifies the whole file's end-to-end digest from the manifest, and
// the background scrubber re-reads resident chunks and quarantines
// corruption at the source. Memory-backed stores return ErrNotOnDisk;
// callers fall back to GetZC.
func (s *Store) OpenChunk(ref Ref) (*os.File, int64, error) {
	if s.dir == "" {
		return nil, 0, ErrNotOnDisk
	}
	sh := s.shardOf(ref)
	sh.mu.Lock()
	e, ok := sh.chunks[ref]
	if !ok || e.gone {
		sh.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: %s", ErrMissing, ref.Short())
	}
	sh.touchLocked(e)
	size := e.size
	sh.mu.Unlock()
	f, err := os.Open(s.path(ref))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %s: %v", ErrMissing, ref.Short(), err)
	}
	mServeFileOpens.Inc()
	return f, size, nil
}

// Has reports whether a chunk is present (and not quarantined).
func (s *Store) Has(ref Ref) bool {
	sh := s.shardOf(ref)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.chunks[ref]
	return ok && !e.gone
}

// Missing filters refs down to the ones not present, deduplicated,
// in first-seen order. It is a preflight/diagnostic answer only: a
// transfer that must hold chunks across the check pins them instead
// (Retain/PutPinned), as the answer can go stale under eviction.
func (s *Store) Missing(refs []Ref) []Ref {
	var out []Ref
	seen := make(map[Ref]bool)
	for _, ref := range refs {
		if seen[ref] {
			continue
		}
		seen[ref] = true
		sh := s.shardOf(ref)
		sh.mu.Lock()
		e, ok := sh.chunks[ref]
		present := ok && !e.gone
		sh.mu.Unlock()
		if !present {
			out = append(out, ref)
		}
	}
	return out
}

// Retain pins every listed chunk (once per occurrence). It fails
// without side effects if any chunk is absent, so a manifest is
// either fully pinned or not at all. The shards the refs touch are
// locked together (in index order, so concurrent Retains cannot
// deadlock) to keep the check-then-pin atomic.
func (s *Store) Retain(refs []Ref) error {
	var touched [numShards]bool
	for _, ref := range refs {
		touched[ref[0]&(numShards-1)] = true
	}
	for i := range s.shards {
		if touched[i] {
			s.shards[i].mu.Lock()
		}
	}
	unlock := func() {
		for i := range s.shards {
			if touched[i] {
				s.shards[i].mu.Unlock()
			}
		}
	}
	for _, ref := range refs {
		if e, ok := s.shardOf(ref).chunks[ref]; !ok || e.gone {
			unlock()
			return fmt.Errorf("%w: %s", ErrMissing, ref.Short())
		}
	}
	for _, ref := range refs {
		sh := s.shardOf(ref)
		e := sh.chunks[ref]
		if e.refs == 0 && e.elem != nil {
			sh.cold.Remove(e.elem)
			e.elem = nil
		}
		e.refs++
	}
	unlock()
	return nil
}

// Release drops one pin per listed chunk. Unknown refs are ignored so
// teardown paths need not track exactly what a failed Retain pinned.
func (s *Store) Release(refs []Ref) {
	for _, ref := range refs {
		sh := s.shardOf(ref)
		sh.mu.Lock()
		e, ok := sh.chunks[ref]
		if !ok || e.refs == 0 {
			sh.mu.Unlock()
			continue
		}
		e.refs--
		if e.refs > 0 {
			sh.mu.Unlock()
			continue
		}
		if e.gone {
			// The last manifest naming a quarantined chunk is gone; there
			// are no bytes to cache, so the placeholder entry goes too.
			s.dropLocked(sh, ref, e)
		} else if s.cap > 0 {
			e.elem = sh.cold.PushFront(coldRef{ref})
		} else {
			s.dropLocked(sh, ref, e)
		}
		sh.mu.Unlock()
	}
	s.evict()
}

// Sweep deletes every unreferenced chunk — the recovery-time garbage
// collection that reclaims orphans a crash left behind. It returns
// the number of chunks and bytes reclaimed.
func (s *Store) Sweep() (chunks int, bytes int64) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for el := sh.cold.Front(); el != nil; {
			next := el.Next()
			ref := el.Value.(coldRef).ref
			e := sh.chunks[ref]
			chunks++
			bytes += e.size
			s.dropLocked(sh, ref, e)
			el = next
		}
		sh.mu.Unlock()
	}
	return chunks, bytes
}

// touchLocked refreshes a chunk's LRU position. Caller holds sh.mu.
func (sh *shard) touchLocked(e *entry) {
	if e.elem != nil {
		sh.cold.MoveToFront(e.elem)
	}
}

// evict enforces the capacity by dropping cold chunks. The byte total
// is exact (store-wide); the victim order is per-shard LRU, visited
// round-robin, which approximates global LRU without a cross-shard
// ordering structure. Shards are locked one at a time, never nested,
// so eviction cannot deadlock against Retain's multi-shard lock.
func (s *Store) evict() {
	if s.cap <= 0 {
		return
	}
	for s.bytes.Load() > s.cap {
		evicted := false
		for i := range s.shards {
			if s.bytes.Load() <= s.cap {
				return
			}
			sh := &s.shards[i]
			sh.mu.Lock()
			if el := sh.cold.Back(); el != nil {
				ref := el.Value.(coldRef).ref
				s.dropLocked(sh, ref, sh.chunks[ref])
				s.evictions.Add(1)
				mEvictions.Inc()
				evicted = true
			}
			sh.mu.Unlock()
		}
		if !evicted {
			return // everything resident is pinned
		}
	}
}

// dropLocked removes one chunk from its shard's table (and disk).
// Caller holds sh.mu.
func (s *Store) dropLocked(sh *shard, ref Ref, e *entry) {
	if e.elem != nil {
		sh.cold.Remove(e.elem)
		e.elem = nil
	}
	if e.gone {
		sh.gone--
	}
	delete(sh.chunks, ref)
	s.bytes.Add(-e.size)
	if s.dir != "" {
		os.Remove(s.path(ref))
	}
}

// Lost returns the number of quarantined placeholder entries still
// awaiting repair: refs that live manifests pin but that currently
// answer ErrMissing. A store is healed when this returns to zero.
func (s *Store) Lost() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.gone
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Dedup:       s.dedup.Load(),
		Evictions:   s.evictions.Load(),
		Quarantined: s.quarantined.Load(),
		Repaired:    s.repaired.Load(),
		Scrubbed:    s.scrubbedB.Load(),
		Bytes:       s.bytes.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		// Quarantined placeholders hold no content; they are not chunks.
		st.Chunks += len(sh.chunks) - sh.gone
		sh.mu.Unlock()
	}
	return st
}

// Refs returns the refs of every resident chunk; tests and sweeps use
// it.
func (s *Store) Refs() []Ref {
	var out []Ref
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for ref, e := range sh.chunks {
			if !e.gone {
				out = append(out, ref)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

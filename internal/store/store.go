// Package store implements the content-addressed chunk store that
// backs bulk package content everywhere in the GDN: object servers
// persist replica state through it, GDN HTTPDs cache downloaded
// chunks in it, and the replication protocols ship only the chunks a
// receiver is missing because equal content always has the equal key.
//
// A chunk is an immutable byte string addressed by its SHA-256 digest
// (its Ref). Addressing by content gives three properties the paper
// asks of the GDN at once: identical content stored once no matter how
// many packages or versions reference it (packages "can be very
// large", §2), end-to-end integrity — a reader that verifies the
// digest cannot be served corrupted content by a replica or proxy
// (§6.1) — and cheap delta transfer, because a receiver can name
// exactly the chunks it lacks.
//
// # Ownership
//
// Chunks are reference counted. Retain pins a chunk on behalf of a
// manifest that names it (a package file, a tagged version, an object
// server's on-disk checkpoint); Release drops the pin. What happens
// when the count reaches zero depends on the store's mode:
//
//   - plain stores delete the chunk immediately — the store holds
//     exactly the content live manifests reference;
//   - cache stores (WithCapacity) keep released chunks on an LRU list
//     and evict from its cold end only when the capacity is exceeded.
//     This is the proxy-cache mode: a cache replica that drops its
//     state keeps the bytes around, so a later refill fetches only
//     chunks that were actually evicted.
//
// # Durability
//
// A disk-backed store (Open with a directory) writes each chunk to a
// temporary file, fsyncs it, and renames it into place, so a crash
// leaves either the whole chunk or nothing. Orphans from a crash —
// chunks written but never referenced by a durable manifest — are
// reclaimed by Sweep, which object servers run after recovery.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Ref is a chunk's content address: the SHA-256 of its bytes.
type Ref [sha256.Size]byte

// RefOf returns the content address of data.
func RefOf(data []byte) Ref { return sha256.Sum256(data) }

// String renders the full hex digest.
func (r Ref) String() string { return hex.EncodeToString(r[:]) }

// Short renders an abbreviated digest for logs.
func (r Ref) Short() string { return hex.EncodeToString(r[:6]) }

// Chunk is one manifest entry: a content address plus the chunk's
// length, so manifest holders can do offset arithmetic without
// touching chunk data.
type Chunk struct {
	Ref  Ref
	Size int64
}

// Errors reported by the store.
var (
	// ErrMissing is returned when a referenced chunk is not present.
	ErrMissing = errors.New("store: chunk not present")
	// ErrCorrupt is returned when on-disk chunk bytes no longer match
	// their content address.
	ErrCorrupt = errors.New("store: chunk bytes do not match their address")
)

// Stats counts store effectiveness for experiments and tests.
type Stats struct {
	// Chunks and Bytes are the current resident totals.
	Chunks int
	Bytes  int64
	// Dedup counts Put calls that found their chunk already present.
	Dedup int64
	// Evictions counts chunks dropped by the capacity policy.
	Evictions int64
	// Quarantined counts chunks the scrubber found corrupt on disk and
	// moved aside (cumulative).
	Quarantined int64
	// Repaired counts quarantined chunks healed by a later Put
	// (cumulative).
	Repaired int64
	// Scrubbed counts bytes of chunk content the scrubber has verified
	// (cumulative).
	Scrubbed int64
}

// entry is the in-memory record of one chunk. data is nil for
// disk-resident chunks; elem is non-nil while the chunk sits on the
// cold (refs == 0) LRU list. gone marks a quarantined chunk: the
// scrubber found its bytes corrupt and moved them aside, but live
// manifests still pin the ref, so the entry stays in the table —
// carrying the reference count across the repair — while behaving as
// absent to every reader until a fresh Put heals it.
type entry struct {
	size int64
	refs int
	data []byte
	elem *list.Element
	gone bool
}

// Store is a content-addressed chunk store. The zero value is not
// usable; call Mem or Open. Stores are safe for concurrent use.
type Store struct {
	dir string
	cap int64

	mu     sync.Mutex
	chunks map[Ref]*entry
	cold   *list.List // refs == 0, front = most recently used
	bytes  int64
	gone   int // quarantined placeholder entries in chunks
	stats  Stats

	// cursor is the scrubber's resume point: scrubbing walks refs in
	// ascending order and carries on where the previous pass stopped,
	// so a bounded pass still covers the whole store eventually.
	cursor   Ref
	scrubbed bool // cursor is valid (a pass has started)

	scrubStop chan struct{} // non-nil while a background scrubber runs
	scrubDone chan struct{}
}

// Option configures a store.
type Option func(*Store)

// WithCapacity switches the store to cache mode: released chunks are
// kept (up to roughly capBytes of total content) and evicted least-
// recently-used first. Retained chunks are never evicted, so a live
// working set larger than the capacity simply overshoots it.
func WithCapacity(capBytes int64) Option {
	return func(s *Store) { s.cap = capBytes }
}

// Mem returns a memory-backed store.
func Mem(opts ...Option) *Store {
	s, _ := Open("", opts...)
	return s
}

// Open returns a store rooted at dir, creating the directory as
// needed and indexing any chunks a previous process left behind
// (recovery). An empty dir selects a memory-backed store.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:    dir,
		chunks: make(map[Ref]*entry),
		cold:   list.New(),
	}
	for _, o := range opts {
		o(s)
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	if err := s.index(); err != nil {
		return nil, err
	}
	return s, nil
}

// index scans the directory for chunks left by a previous run. They
// enter the table unreferenced; recovery retains the ones its
// manifests name and Sweep reclaims the rest.
func (s *Store) index() error {
	fanouts, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, fo := range fanouts {
		if !fo.IsDir() || len(fo.Name()) != 2 {
			continue
		}
		sub := filepath.Join(s.dir, fo.Name())
		files, err := os.ReadDir(sub)
		if err != nil {
			return err
		}
		for _, f := range files {
			name := f.Name()
			b, err := hex.DecodeString(name)
			if err != nil || len(b) != sha256.Size {
				// Stray temporary or foreign file; a crash mid-write
				// leaves .tmp files here. Remove it.
				os.Remove(filepath.Join(sub, name))
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			var ref Ref
			copy(ref[:], b)
			e := &entry{size: info.Size()}
			e.elem = s.cold.PushBack(coldRef{ref})
			s.chunks[ref] = e
			s.bytes += e.size
		}
	}
	return nil
}

// coldRef is the LRU list payload: the ref of a refs==0 chunk.
type coldRef struct{ ref Ref }

// path returns the on-disk location of one chunk, with a two-hex-digit
// fanout directory so no single directory grows unbounded.
func (s *Store) path(ref Ref) string {
	hexRef := ref.String()
	return filepath.Join(s.dir, hexRef[:2], hexRef)
}

// Put stores data under its content address and returns the address.
// Storing content that is already present is a cheap no-op (the
// content-addressing dedup). The chunk enters unreferenced; callers
// that hold it in a manifest must Retain it.
func (s *Store) Put(data []byte) (Ref, error) {
	ref := RefOf(data)
	return ref, s.putRef(ref, data, false)
}

// PutRef stores data that is claimed to have address ref, verifying
// the claim — the integrity gate every chunk received from the
// network passes through.
func (s *Store) PutRef(ref Ref, data []byte) error {
	return s.putRef(ref, data, false)
}

// PutPinned stores data with one reference already held, atomically
// with the insert — a pinned chunk can never be the victim of the
// eviction its own arrival triggers, even when the pinned working
// set already exceeds a cache store's capacity.
func (s *Store) PutPinned(data []byte) (Ref, error) {
	ref := RefOf(data)
	return ref, s.putRef(ref, data, true)
}

func (s *Store) putRef(ref Ref, data []byte, pin bool) error {
	start := time.Now()
	defer mPutSeconds.ObserveSince(start)
	mPutBytes.Observe(int64(len(data)))
	if RefOf(data) != ref {
		return fmt.Errorf("%w: got %d bytes hashing to %s, want %s",
			ErrCorrupt, len(data), RefOf(data).Short(), ref.Short())
	}
	s.mu.Lock()
	if e, ok := s.chunks[ref]; ok && !e.gone {
		s.dedupLocked(ref, e, pin)
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	if s.dir != "" {
		if err := s.writeChunk(ref, data); err != nil {
			return err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.chunks[ref]; ok {
		if e.gone {
			// Healing a quarantined chunk: the fresh (verified) bytes are
			// on disk again. The entry kept the reference count of every
			// manifest that still names the ref, so pins survive the
			// corruption-and-repair round trip.
			e.gone = false
			s.gone--
			e.size = int64(len(data))
			if s.dir == "" {
				e.data = append([]byte(nil), data...)
			}
			s.bytes += e.size
			s.stats.Repaired++
			mRepaired.Inc()
			if pin {
				e.refs++
			} else if e.refs == 0 && e.elem == nil {
				e.elem = s.cold.PushFront(coldRef{ref})
			}
			s.evictLocked()
			return nil
		}
		// Raced with another Put of the same content.
		s.dedupLocked(ref, e, pin)
		return nil
	}
	e := &entry{size: int64(len(data))}
	if s.dir == "" {
		e.data = append([]byte(nil), data...)
	}
	if pin {
		e.refs = 1
	} else {
		e.elem = s.cold.PushFront(coldRef{ref})
	}
	s.chunks[ref] = e
	s.bytes += e.size
	s.evictLocked()
	return nil
}

// dedupLocked accounts a Put that found its chunk already present,
// taking the pin when asked.
func (s *Store) dedupLocked(ref Ref, e *entry, pin bool) {
	s.stats.Dedup++
	mDedup.Inc()
	if pin {
		if e.refs == 0 && e.elem != nil {
			s.cold.Remove(e.elem)
			e.elem = nil
		}
		e.refs++
		return
	}
	s.touchLocked(ref, e)
}

// writeChunk persists one chunk durably. Concurrent writers of the
// same content race benignly — the rename is atomic and the bytes
// identical.
func (s *Store) writeChunk(ref Ref, data []byte) error {
	return WriteFileSync(s.path(ref), data)
}

// WriteFileSync writes data durably at name: temporary file in the
// same directory, fsync, rename into place, then fsync the directory
// so the rename itself survives a crash. The store uses it for
// chunks; object servers use it for checkpoint manifests.
func WriteFileSync(name string, data []byte) error {
	dir := filepath.Dir(name)
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(name)+".tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), name); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // advisory; some filesystems refuse dir fsync
		d.Close()
	}
	return nil
}

// Get returns a chunk's bytes. Disk reads are verified against the
// content address, so a corrupted chunk file surfaces as ErrCorrupt
// rather than as silently wrong content. Callers must not modify the
// returned slice of a memory-backed store.
func (s *Store) Get(ref Ref) ([]byte, error) {
	start := time.Now()
	defer mGetSeconds.ObserveSince(start)
	s.mu.Lock()
	e, ok := s.chunks[ref]
	if !ok || e.gone {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrMissing, ref.Short())
	}
	s.touchLocked(ref, e)
	data := e.data
	s.mu.Unlock()
	if data != nil {
		return data, nil
	}
	data, err := os.ReadFile(s.path(ref))
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrMissing, ref.Short(), err)
	}
	if RefOf(data) != ref {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, ref.Short())
	}
	return data, nil
}

// Has reports whether a chunk is present (and not quarantined).
func (s *Store) Has(ref Ref) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.chunks[ref]
	return ok && !e.gone
}

// Missing filters refs down to the ones not present, deduplicated,
// in first-seen order. It is a preflight/diagnostic answer only: a
// transfer that must hold chunks across the check pins them instead
// (Retain/PutPinned), as the answer can go stale under eviction.
func (s *Store) Missing(refs []Ref) []Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Ref
	seen := make(map[Ref]bool)
	for _, ref := range refs {
		if seen[ref] {
			continue
		}
		seen[ref] = true
		if e, ok := s.chunks[ref]; !ok || e.gone {
			out = append(out, ref)
		}
	}
	return out
}

// Retain pins every listed chunk (once per occurrence). It fails
// without side effects if any chunk is absent, so a manifest is
// either fully pinned or not at all.
func (s *Store) Retain(refs []Ref) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ref := range refs {
		if e, ok := s.chunks[ref]; !ok || e.gone {
			return fmt.Errorf("%w: %s", ErrMissing, ref.Short())
		}
	}
	for _, ref := range refs {
		e := s.chunks[ref]
		if e.refs == 0 && e.elem != nil {
			s.cold.Remove(e.elem)
			e.elem = nil
		}
		e.refs++
	}
	return nil
}

// Release drops one pin per listed chunk. Unknown refs are ignored so
// teardown paths need not track exactly what a failed Retain pinned.
func (s *Store) Release(refs []Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ref := range refs {
		e, ok := s.chunks[ref]
		if !ok || e.refs == 0 {
			continue
		}
		e.refs--
		if e.refs > 0 {
			continue
		}
		if e.gone {
			// The last manifest naming a quarantined chunk is gone; there
			// are no bytes to cache, so the placeholder entry goes too.
			s.dropLocked(ref, e)
		} else if s.cap > 0 {
			e.elem = s.cold.PushFront(coldRef{ref})
		} else {
			s.dropLocked(ref, e)
		}
	}
	s.evictLocked()
}

// Sweep deletes every unreferenced chunk — the recovery-time garbage
// collection that reclaims orphans a crash left behind. It returns
// the number of chunks and bytes reclaimed.
func (s *Store) Sweep() (chunks int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.cold.Front(); el != nil; {
		next := el.Next()
		ref := el.Value.(coldRef).ref
		e := s.chunks[ref]
		chunks++
		bytes += e.size
		s.dropLocked(ref, e)
		el = next
	}
	return chunks, bytes
}

// touchLocked refreshes a chunk's LRU position.
func (s *Store) touchLocked(ref Ref, e *entry) {
	if e.elem != nil {
		s.cold.MoveToFront(e.elem)
	}
	_ = ref
}

// evictLocked enforces the capacity by dropping cold chunks, oldest
// first. Retained chunks are never touched.
func (s *Store) evictLocked() {
	if s.cap <= 0 {
		return
	}
	for s.bytes > s.cap {
		el := s.cold.Back()
		if el == nil {
			return // everything resident is pinned
		}
		ref := el.Value.(coldRef).ref
		s.dropLocked(ref, s.chunks[ref])
		s.stats.Evictions++
		mEvictions.Inc()
	}
}

// dropLocked removes one chunk from the table (and disk).
func (s *Store) dropLocked(ref Ref, e *entry) {
	if e.elem != nil {
		s.cold.Remove(e.elem)
		e.elem = nil
	}
	if e.gone {
		s.gone--
	}
	delete(s.chunks, ref)
	s.bytes -= e.size
	if s.dir != "" {
		os.Remove(s.path(ref))
	}
}

// Lost returns the number of quarantined placeholder entries still
// awaiting repair: refs that live manifests pin but that currently
// answer ErrMissing. A store is healed when this returns to zero.
func (s *Store) Lost() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gone
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	// Quarantined placeholders hold no content; they are not chunks.
	st.Chunks = len(s.chunks) - s.gone
	st.Bytes = s.bytes
	return st
}

// Refs returns the refs of every resident chunk; tests and sweeps use
// it.
func (s *Store) Refs() []Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Ref, 0, len(s.chunks))
	for ref, e := range s.chunks {
		if !e.gone {
			out = append(out, ref)
		}
	}
	return out
}

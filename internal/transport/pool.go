package transport

import "sync"

// Frame buffer pool: receive paths allocate one buffer per inbound
// frame, and on busy connections (pipelined RPC, streamed bulk
// transfer) those buffers dominate allocation. Consumers that fully
// own a received frame hand it back with PutFrame once they are done;
// frames whose bytes escape to callers (a unary RPC response body)
// are simply never returned, which is safe — the pool does not
// require balance.
//
// Buffers are size-classed by capacity. A returned buffer may be a
// sub-slice of its original allocation (a security channel strips its
// record header in place), so classification uses the capacity that
// is actually left, rounding down to the class it still satisfies.

// The 288 KiB class exists for stream data frames: a canonical
// 256 KiB chunk plus the stream frame header must not round up to the
// 1 MiB class, or every bulk-transfer frame would pin (and, worse,
// first zero) four times the memory it uses.
var frameClasses = [...]int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 288 << 10, 1 << 20}

var framePools [len(frameClasses)]sync.Pool

// frameSlack tolerates in-place prefix stripping by layered transports
// (the RPC sequence layer consumes an 8-byte header without copying):
// a buffer within frameSlack below a class still pools in that class.
// Without the tolerance a stripped frame rounds down a whole class and
// is then rejected as grossly oversized, so the receive path of every
// layered connection would leak its buffers out of the pool and every
// frame would be a fresh (zeroed) allocation.
const frameSlack = 512

// classFor returns the smallest class index whose buffers hold n
// bytes, or -1 when n exceeds every class.
func classFor(n int) int {
	for i, c := range frameClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// GetFrame returns a buffer of length n, drawn from the pool when a
// class fits.
func GetFrame(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		return make([]byte, n)
	}
	if v := framePools[ci].Get(); v != nil {
		if b := v.([]byte); cap(b) >= n {
			return b[:n]
		}
		// A slack-admitted entry a few bytes under the ask (possible
		// only when n is within frameSlack of the class size); drop it
		// and allocate full-size.
	}
	return make([]byte, n, frameClasses[ci])
}

// PutFrame recycles a frame buffer obtained from GetFrame (or any
// buffer the caller exclusively owns). The caller must not touch the
// slice afterwards.
func PutFrame(p []byte) {
	c := cap(p)
	if c == 0 {
		return
	}
	// Round down (modulo frameSlack): a buffer qualifies for the
	// largest class it can still serve — but a buffer grossly larger
	// than its class (an oversized one-off frame, or one past the
	// largest class) is dropped rather than pooled, so a "small" pool
	// entry never pins a multi-megabyte backing array.
	ci := -1
	for i, size := range frameClasses {
		if c >= size-frameSlack {
			ci = i
		}
	}
	if ci < 0 || c > 2*frameClasses[ci] {
		return
	}
	framePools[ci].Put(p[:0:c])
}

// Package transport defines the message transport that every Globe
// protocol in this repository runs over: location-service requests,
// replication traffic between local representatives (the paper's GRP),
// object-server commands, and the mini-DNS used by the name service.
//
// Two interchangeable implementations exist: the simulated wide-area
// network in package netsim (used by tests, benchmarks and experiments,
// with virtual latency accounting and byte metering) and the TCP framing
// transport in this package (used by the cmd/ daemons on real sockets).
// Code above this layer cannot tell them apart, which is how the same
// GDN stack runs both in-process worldwide simulations and real
// multi-process deployments.
package transport

import (
	"errors"
	"time"
)

// A Conn is a bidirectional, ordered, message-oriented connection.
// Frames are delivered whole or not at all. Send and Recv are each safe
// for concurrent use: any number of goroutines may Send (frames are
// serialized, never interleaved) and any number may Recv (each frame is
// delivered to exactly one receiver). The multiplexed RPC layer relies
// on this: many callers send on one shared connection while a single
// demux goroutine receives.
type Conn interface {
	// Send transmits one frame.
	Send(p []byte) error
	// Recv blocks for the next frame. The returned cost is the virtual
	// network cost of delivering the frame (propagation plus
	// transmission) on simulated networks, and zero on real ones.
	Recv() (p []byte, cost time.Duration, err error)
	// Close releases the connection and unblocks pending Recv calls.
	Close() error
	// LocalAddr and RemoteAddr return transport addresses, in the
	// "site:service" form for simulated networks and "host:port" for TCP.
	LocalAddr() string
	RemoteAddr() string
}

// A BatchSender is a Conn that can transmit several frames in one
// operation — on TCP, one vectored write instead of a syscall per
// frame. Frames are delivered in order, atomically with respect to
// concurrent Send calls. The multiplexed RPC layer batches pipelined
// requests and responses through it when available; callers must be
// prepared for a plain Conn and fall back to per-frame Send.
type BatchSender interface {
	Conn
	SendBatch(frames [][]byte) error
}

// A Listener accepts inbound connections for one transport address.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// A Network creates listeners and connections. The from argument to
// Dial names the calling site on simulated networks so the network can
// price the path; TCP ignores it.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(from, addr string) (Conn, error)
}

// Errors shared by transport implementations.
var (
	ErrClosed      = errors.New("transport: connection closed")
	ErrNoListener  = errors.New("transport: no listener at address")
	ErrUnreachable = errors.New("transport: destination unreachable")
	ErrFrameSize   = errors.New("transport: frame exceeds size limit")
)

// MaxFrame bounds a single frame. It is sized for one file chunk plus
// protocol overhead; anything larger indicates a protocol bug or an
// attack and is refused at the transport (paper §6.1: servers must not
// be crashable by malformed traffic).
const MaxFrame = 20 << 20

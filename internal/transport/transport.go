// Package transport defines the message transport that every Globe
// protocol in this repository runs over: location-service requests,
// replication traffic between local representatives (the paper's GRP),
// object-server commands, and the mini-DNS used by the name service.
//
// Two interchangeable implementations exist: the simulated wide-area
// network in package netsim (used by tests, benchmarks and experiments,
// with virtual latency accounting and byte metering) and the TCP framing
// transport in this package (used by the cmd/ daemons on real sockets).
// Code above this layer cannot tell them apart, which is how the same
// GDN stack runs both in-process worldwide simulations and real
// multi-process deployments.
package transport

import (
	"errors"
	"io"
	"os"
	"time"
)

// A Conn is a bidirectional, ordered, message-oriented connection.
// Frames are delivered whole or not at all. Send and Recv are each safe
// for concurrent use: any number of goroutines may Send (frames are
// serialized, never interleaved) and any number may Recv (each frame is
// delivered to exactly one receiver). The multiplexed RPC layer relies
// on this: many callers send on one shared connection while a single
// demux goroutine receives.
type Conn interface {
	// Send transmits one frame.
	Send(p []byte) error
	// Recv blocks for the next frame. The returned cost is the virtual
	// network cost of delivering the frame (propagation plus
	// transmission) on simulated networks, and zero on real ones.
	Recv() (p []byte, cost time.Duration, err error)
	// Close releases the connection and unblocks pending Recv calls.
	Close() error
	// LocalAddr and RemoteAddr return transport addresses, in the
	// "site:service" form for simulated networks and "host:port" for TCP.
	LocalAddr() string
	RemoteAddr() string
}

// A BatchSender is a Conn that can transmit several frames in one
// operation — on TCP, one vectored write instead of a syscall per
// frame. Frames are delivered in order, atomically with respect to
// concurrent Send calls. The multiplexed RPC layer batches pipelined
// requests and responses through it when available; callers must be
// prepared for a plain Conn and fall back to per-frame Send.
type BatchSender interface {
	Conn
	SendBatch(frames [][]byte) error
}

// A VecSender is a Conn that can transmit one frame whose payload is
// supplied as a vector of parts: the frame on the wire is the
// concatenation of the parts, delivered to the peer's Recv as a single
// contiguous buffer. This is the zero-copy handoff the bulk data plane
// rides on — the RPC layer passes a tiny frame header plus a
// chunk-sized body straight from the store's buffers, and the
// transport either writes the parts vectored (writev on TCP: zero
// copies) or assembles them once into the delivery buffer (simulated
// networks: one copy, where the naive path costs three). Parts are
// only read during the call; ownership stays with the caller.
type VecSender interface {
	Conn
	SendVec(parts [][]byte) error
}

// A FileSender is a Conn that can transmit one frame whose payload is
// hdr followed by n bytes read from f at its current offset. On TCP
// the file section is spliced with sendfile(2) — the chunk bytes go
// disk→socket without visiting user space. The conn owns f only for
// the duration of the call. Callers must be prepared for a plain Conn
// and fall back to reading the file themselves (SendFileFrame helper).
type FileSender interface {
	Conn
	SendFileFrame(hdr []byte, f *os.File, n int64) error
}

// SendVec transmits one frame assembled from parts over any Conn:
// vectored when the conn supports it, otherwise assembled once into a
// pooled buffer. It is the fallback-aware entry point callers use.
func SendVec(c Conn, parts [][]byte) error {
	if vs, ok := c.(VecSender); ok {
		return vs.SendVec(parts)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total > MaxFrame {
		return ErrFrameSize
	}
	buf := GetFrame(total)
	off := 0
	for _, p := range parts {
		off += copy(buf[off:], p)
	}
	err := c.Send(buf)
	PutFrame(buf)
	return err
}

// SendFileFrame transmits one frame of hdr plus n bytes from f over
// any Conn: spliced when the conn supports FileSender, otherwise read
// once into a pooled buffer and sent (vectored if possible).
func SendFileFrame(c Conn, hdr []byte, f *os.File, n int64) error {
	if fs, ok := c.(FileSender); ok {
		return fs.SendFileFrame(hdr, f, n)
	}
	if n < 0 || n > int64(MaxFrame) {
		return ErrFrameSize
	}
	buf := GetFrame(int(n))
	if _, err := io.ReadFull(f, buf); err != nil {
		PutFrame(buf)
		return err
	}
	err := SendVec(c, [][]byte{hdr, buf})
	PutFrame(buf)
	return err
}

// A Listener accepts inbound connections for one transport address.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// A Network creates listeners and connections. The from argument to
// Dial names the calling site on simulated networks so the network can
// price the path; TCP ignores it.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(from, addr string) (Conn, error)
}

// Errors shared by transport implementations.
var (
	ErrClosed      = errors.New("transport: connection closed")
	ErrNoListener  = errors.New("transport: no listener at address")
	ErrUnreachable = errors.New("transport: destination unreachable")
	ErrFrameSize   = errors.New("transport: frame exceeds size limit")
)

// MaxFrame bounds a single frame. It is sized for one file chunk plus
// protocol overhead; anything larger indicates a protocol bug or an
// attack and is refused at the transport (paper §6.1: servers must not
// be crashable by malformed traffic).
const MaxFrame = 20 << 20

package transport

import (
	"math/rand"
	"time"
)

// Backoff returns the delay before the next attempt after n consecutive
// failures (n starts at 1), growing exponentially from base and capped
// at max, with half-range jitter: the result is uniform in [d/2, d]
// where d is the capped exponential. The jitter decorrelates the many
// clients of one dead remote, so a heal is not greeted by a synchronized
// redial storm (the thundering herd the chaos runs exposed).
func Backoff(n int, base, max time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	if n < 1 {
		n = 1
	}
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= max || d <= 0 { // d <= 0 on overflow
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
)

// pair returns a connected client/server conn over localhost TCP.
func pair(t *testing.T) (Conn, Conn) {
	t.Helper()
	var tcp TCP
	l, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	type accepted struct {
		conn Conn
		err  error
	}
	acc := make(chan accepted, 1)
	go func() {
		c, err := l.Accept()
		acc <- accepted{c, err}
	}()
	client, err := tcp.Dial("ignored-site", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	a := <-acc
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { a.conn.Close() })
	return client, a.conn
}

func TestTCPRoundTripAndOrdering(t *testing.T) {
	client, server := pair(t)
	const frames = 50
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < frames; i++ {
			payload := bytes.Repeat([]byte{byte(i)}, i*37+1)
			if err := client.Send(payload); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < frames; i++ {
		got, cost, err := server.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if cost != 0 {
			t.Fatal("real TCP reports no virtual cost")
		}
		if len(got) != i*37+1 || got[0] != byte(i) {
			t.Fatalf("frame %d out of order or corrupt", i)
		}
	}
	wg.Wait()
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	client, server := pair(t)
	done := make(chan error, 1)
	go func() {
		_, _, err := server.Recv()
		done <- err
	}()
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("Recv must fail after the peer closes")
	}
}

func TestTCPFrameSizeBound(t *testing.T) {
	client, _ := pair(t)
	if err := client.Send(make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("err = %v, want ErrFrameSize", err)
	}
}

func TestTCPHostileLengthPrefix(t *testing.T) {
	// A raw peer announcing an absurd frame length must not make the
	// framed side allocate it (§6.1: survive malformed traffic).
	var tcp TCP
	l, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type accepted struct {
		conn Conn
		err  error
	}
	acc := make(chan accepted, 1)
	go func() {
		c, err := l.Accept()
		acc <- accepted{c, err}
	}()
	raw, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	a := <-acc
	if a.err != nil {
		t.Fatal(a.err)
	}
	defer a.conn.Close()

	// 0xFFFFFFFF length prefix.
	if _, err := raw.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.conn.Recv(); err == nil {
		t.Fatal("hostile length prefix must be rejected")
	}
}

func TestTCPDialFailure(t *testing.T) {
	var tcp TCP
	if _, err := tcp.Dial("", "127.0.0.1:1"); err == nil {
		t.Fatal("dialing a closed port must fail")
	}
}

func TestTCPSendBatchOrderingAndInterleave(t *testing.T) {
	client, server := pair(t)
	bs, ok := client.(BatchSender)
	if !ok {
		t.Fatal("framed TCP conn must implement BatchSender")
	}
	// Interleave batched and plain sends from concurrent goroutines;
	// every frame must arrive whole, in some serialized order.
	const rounds = 30
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			batch := [][]byte{
				bytes.Repeat([]byte{1}, i+1),
				bytes.Repeat([]byte{2}, i+2),
				bytes.Repeat([]byte{3}, i+3),
			}
			if err := bs.SendBatch(batch); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := client.Send(bytes.Repeat([]byte{9}, i+1)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	got := make(map[byte]int)
	for i := 0; i < rounds*3+rounds; i++ {
		p, _, err := server.Recv()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(p) == 0 {
			t.Fatalf("frame %d empty", i)
		}
		for _, b := range p {
			if b != p[0] {
				t.Fatalf("frame %d interleaved: %v", i, p)
			}
		}
		got[p[0]]++
	}
	for _, tag := range []byte{1, 2, 3, 9} {
		if got[tag] != rounds {
			t.Fatalf("tag %d: got %d frames, want %d", tag, got[tag], rounds)
		}
	}
	wg.Wait()
}

func TestTCPSendBatchSizeBound(t *testing.T) {
	client, _ := pair(t)
	bs := client.(BatchSender)
	err := bs.SendBatch([][]byte{{1}, make([]byte, MaxFrame+1)})
	if !errors.Is(err, ErrFrameSize) {
		t.Fatalf("err = %v, want ErrFrameSize", err)
	}
}

package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// TCP is the real-socket implementation of Network. Frames are
// length-prefixed with a big-endian 32-bit size. It carries no virtual
// cost information; wall-clock time is the measurement on real networks.
type TCP struct{}

// Listen starts a TCP listener on addr ("host:port"; empty host binds
// all interfaces, port 0 picks a free port).
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial connects to addr. The from site name is ignored on real networks.
func (TCP) Dial(from, addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return NewFramedConn(c), nil
}

type tcpListener struct {
	l net.Listener
}

func (tl *tcpListener) Accept() (Conn, error) {
	c, err := tl.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewFramedConn(c), nil
}

func (tl *tcpListener) Close() error { return tl.l.Close() }
func (tl *tcpListener) Addr() string { return tl.l.Addr().String() }

// recvBufSize is the buffered-reader size for inbound frames. Most
// protocol frames (location-service records, replication control
// messages) are far smaller than this, so one read syscall typically
// delivers several pipelined frames.
const recvBufSize = 64 << 10

// framedConn adapts a stream connection to the frame-oriented Conn
// interface with 32-bit length prefixes.
//
// Lock scope: sendMu guards sendHdr and the write side of c so
// concurrent senders cannot interleave a prefix from one frame with the
// payload of another; recvMu guards recvHdr and br. The two sides are
// independent, so a sender never blocks a receiver.
type framedConn struct {
	c net.Conn

	sendMu  sync.Mutex
	sendHdr [4]byte

	recvMu  sync.Mutex
	recvHdr [4]byte
	br      *bufio.Reader

	closed   sync.Once
	closeErr error
}

// NewFramedConn wraps a stream connection (TCP, a net.Pipe end, or a
// security channel's underlying socket) as a frame-oriented Conn.
func NewFramedConn(c net.Conn) Conn {
	return &framedConn{c: c, br: bufio.NewReaderSize(c, recvBufSize)}
}

// Send transmits the length prefix and payload as one vectored write
// (writev on TCP), so a frame costs a single syscall instead of two and
// small frames are never split across segments by the framing layer.
func (f *framedConn) Send(p []byte) error {
	if len(p) > MaxFrame {
		return ErrFrameSize
	}
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	binary.BigEndian.PutUint32(f.sendHdr[:], uint32(len(p)))
	bufs := net.Buffers{f.sendHdr[:], p}
	_, err := bufs.WriteTo(f.c)
	return err
}

// SendBatch transmits several frames as one vectored write: all length
// prefixes and payloads in a single writev, so a burst of pipelined RPC
// frames costs one syscall total.
func (f *framedConn) SendBatch(frames [][]byte) error {
	bufs := make(net.Buffers, 0, 2*len(frames))
	hdrs := make([]byte, 4*len(frames))
	for i, p := range frames {
		if len(p) > MaxFrame {
			return ErrFrameSize
		}
		h := hdrs[i*4 : i*4+4]
		binary.BigEndian.PutUint32(h, uint32(len(p)))
		bufs = append(bufs, h, p)
	}
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	_, err := bufs.WriteTo(f.c)
	return err
}

// SendVec transmits one frame whose payload is the concatenation of
// parts, as a single vectored write: length prefix and every part in
// one writev, no assembly copy anywhere on the send side.
func (f *framedConn) SendVec(parts [][]byte) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total > MaxFrame {
		return ErrFrameSize
	}
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	binary.BigEndian.PutUint32(f.sendHdr[:], uint32(total))
	bufs := make(net.Buffers, 0, 1+len(parts))
	bufs = append(bufs, f.sendHdr[:])
	for _, p := range parts {
		if len(p) > 0 {
			bufs = append(bufs, p)
		}
	}
	_, err := bufs.WriteTo(f.c)
	return err
}

// SendFileFrame transmits one frame of hdr plus n bytes read from the
// file's current offset. The prefix and hdr go out as one vectored
// write, then the file section is copied with io.CopyN — on a TCP
// connection net.TCPConn.ReadFrom recognizes the *os.File inside the
// LimitedReader and splices it with sendfile(2), so chunk bytes move
// disk→socket without entering user space.
func (f *framedConn) SendFileFrame(hdr []byte, file *os.File, n int64) error {
	if n < 0 || int64(len(hdr))+n > int64(MaxFrame) {
		return ErrFrameSize
	}
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	binary.BigEndian.PutUint32(f.sendHdr[:], uint32(int64(len(hdr))+n))
	bufs := net.Buffers{f.sendHdr[:], hdr}
	if _, err := bufs.WriteTo(f.c); err != nil {
		return err
	}
	written, err := io.CopyN(f.c, file, n)
	if err == nil && written != n {
		err = io.ErrShortWrite
	}
	return err
}

func (f *framedConn) Recv() ([]byte, time.Duration, error) {
	f.recvMu.Lock()
	defer f.recvMu.Unlock()
	if _, err := io.ReadFull(f.br, f.recvHdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(f.recvHdr[:])
	if n > MaxFrame {
		f.c.Close()
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrFrameSize, n)
	}
	p := GetFrame(int(n))
	if _, err := io.ReadFull(f.br, p); err != nil {
		PutFrame(p)
		return nil, 0, err
	}
	return p, 0, nil
}

func (f *framedConn) Close() error {
	f.closed.Do(func() { f.closeErr = f.c.Close() })
	return f.closeErr
}

func (f *framedConn) LocalAddr() string  { return f.c.LocalAddr().String() }
func (f *framedConn) RemoteAddr() string { return f.c.RemoteAddr().String() }

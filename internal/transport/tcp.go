package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP is the real-socket implementation of Network. Frames are
// length-prefixed with a big-endian 32-bit size. It carries no virtual
// cost information; wall-clock time is the measurement on real networks.
type TCP struct{}

// Listen starts a TCP listener on addr ("host:port"; empty host binds
// all interfaces, port 0 picks a free port).
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial connects to addr. The from site name is ignored on real networks.
func (TCP) Dial(from, addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return NewFramedConn(c), nil
}

type tcpListener struct {
	l net.Listener
}

func (tl *tcpListener) Accept() (Conn, error) {
	c, err := tl.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewFramedConn(c), nil
}

func (tl *tcpListener) Close() error { return tl.l.Close() }
func (tl *tcpListener) Addr() string { return tl.l.Addr().String() }

// framedConn adapts a stream connection to the frame-oriented Conn
// interface with 32-bit length prefixes.
type framedConn struct {
	c        net.Conn
	sendMu   sync.Mutex
	recvMu   sync.Mutex
	lenBuf   [4]byte
	recvLen  [4]byte
	closed   sync.Once
	closeErr error
}

// NewFramedConn wraps a stream connection (TCP, a net.Pipe end, or a
// security channel's underlying socket) as a frame-oriented Conn.
func NewFramedConn(c net.Conn) Conn {
	return &framedConn{c: c}
}

func (f *framedConn) Send(p []byte) error {
	if len(p) > MaxFrame {
		return ErrFrameSize
	}
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	binary.BigEndian.PutUint32(f.lenBuf[:], uint32(len(p)))
	if _, err := f.c.Write(f.lenBuf[:]); err != nil {
		return err
	}
	_, err := f.c.Write(p)
	return err
}

func (f *framedConn) Recv() ([]byte, time.Duration, error) {
	f.recvMu.Lock()
	defer f.recvMu.Unlock()
	if _, err := io.ReadFull(f.c, f.recvLen[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(f.recvLen[:])
	if n > MaxFrame {
		f.c.Close()
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrFrameSize, n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(f.c, p); err != nil {
		return nil, 0, err
	}
	return p, 0, nil
}

func (f *framedConn) Close() error {
	f.closed.Do(func() { f.closeErr = f.c.Close() })
	return f.closeErr
}

func (f *framedConn) LocalAddr() string  { return f.c.LocalAddr().String() }
func (f *framedConn) RemoteAddr() string { return f.c.RemoteAddr().String() }

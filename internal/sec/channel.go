package sec

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"
	"time"

	"gdn/internal/transport"
	"gdn/internal/wire"
)

// Config configures one side of a security channel.
type Config struct {
	// Creds identifies this party. Required on servers; required on
	// clients only when the server demands mutual authentication.
	Creds *Credentials
	// TrustAnchors maps authority names to public keys; peer
	// certificates must be signed by one of them.
	TrustAnchors map[string]ed25519.PublicKey
	// RequireClientAuth makes a server demand a client certificate —
	// the paper's two-way authentication between GDN hosts (§6.3,
	// Fig 4 link 3). When false the channel is one-way authenticated,
	// as used towards browsers and GDN proxies (links 1 and 2).
	RequireClientAuth bool
	// AllowedRoles, when non-empty, restricts which authenticated peer
	// roles a server admits (e.g. a GOS command port admits only
	// moderators and admins, §6.1).
	AllowedRoles []string
	// Encrypt enables AES-CTR confidentiality. The paper notes TLS
	// forces them to pay for confidentiality they do not need; setting
	// this false yields an integrity-only channel for comparison (§6.3).
	Encrypt bool
}

func (c *Config) roleAllowed(role string) bool {
	if len(c.AllowedRoles) == 0 {
		return true
	}
	for _, r := range c.AllowedRoles {
		if r == role {
			return true
		}
	}
	return false
}

// Channel is an authenticated, integrity-protected (and optionally
// encrypted) connection. It implements transport.Conn, so rpc servers
// and clients run over it unchanged — including the multiplexed RPC
// layer, whose concurrent senders serialize on sendMu and whose single
// demux goroutine drains Recv.
type Channel struct {
	conn    transport.Conn
	peer    *Certificate // nil when the peer is anonymous
	encrypt bool

	sendMu   sync.Mutex
	sendSeq  uint64
	sendMAC  []byte
	sendHash hash.Hash    // keyed HMAC state, Reset per record under sendMu
	sendKey  cipher.Block // nil when !encrypt

	recvMu     sync.Mutex
	recvSeq    uint64
	recvMAC    []byte
	recvHash   hash.Hash
	recvMACBuf [macSize]byte
	recvKey    cipher.Block
}

var _ transport.Conn = (*Channel)(nil)

// Peer returns the authenticated peer certificate, or nil for an
// anonymous (one-way authenticated) peer.
func (ch *Channel) Peer() *Certificate { return ch.peer }

// PeerName returns the authenticated principal name or "".
func (ch *Channel) PeerName() string {
	if ch.peer == nil {
		return ""
	}
	return ch.peer.Name
}

// Handshake message types.
const (
	hsClientHello = 1
	hsServerHello = 2
	hsClientAuth  = 3
	hsFinished    = 4
)

// Handshake flags.
const (
	flagWantEncrypt = 1 << 0
	flagNeedClient  = 1 << 1
	flagHaveCert    = 1 << 2
)

// Client performs the client side of the handshake over conn. cfg.Creds
// may be nil for an anonymous client (e.g. a user's browser). On
// handshake failure the connection is closed — it is useless and the
// peer must not be left blocked mid-handshake.
func Client(conn transport.Conn, cfg *Config) (*Channel, error) {
	ch, err := clientHandshake(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return ch, nil
}

func clientHandshake(conn transport.Conn, cfg *Config) (*Channel, error) {
	curve := ecdh.X25519()
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}

	var flags uint8
	if cfg.Encrypt {
		flags |= flagWantEncrypt
	}
	if cfg.Creds != nil {
		flags |= flagHaveCert
	}
	hello := wire.NewWriter(64)
	hello.Uint8(hsClientHello)
	hello.Uint8(flags)
	hello.Bytes32(priv.PublicKey().Bytes())
	if err := conn.Send(hello.Bytes()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}

	srvFrame, _, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	r := wire.NewReader(srvFrame)
	if r.Uint8() != hsServerHello {
		return nil, fmt.Errorf("%w: unexpected message", ErrHandshake)
	}
	srvFlags := r.Uint8()
	srvPubBytes := append([]byte(nil), r.Bytes32()...)
	srvCertBytes := append([]byte(nil), r.Bytes32()...)
	srvSig := append([]byte(nil), r.Bytes32()...)
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}

	srvCert, err := UnmarshalCertificate(srvCertBytes)
	if err != nil {
		return nil, err
	}
	if err := srvCert.Verify(cfg.TrustAnchors); err != nil {
		return nil, err
	}
	transcript := handshakeTranscript(hello.Bytes(), srvPubBytes, srvCertBytes)
	if !ed25519.Verify(srvCert.PublicKey, transcript, srvSig) {
		return nil, fmt.Errorf("%w: server signature invalid", ErrHandshake)
	}

	srvPub, err := ecdh.X25519().NewPublicKey(srvPubBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: bad server key: %v", ErrHandshake, err)
	}
	shared, err := priv.ECDH(srvPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}

	encrypt := cfg.Encrypt && srvFlags&flagWantEncrypt != 0
	ch, err := newChannel(conn, shared, transcript, true, encrypt)
	if err != nil {
		return nil, err
	}
	ch.peer = srvCert

	if srvFlags&flagNeedClient != 0 {
		if cfg.Creds == nil {
			return nil, fmt.Errorf("%w: server requires client authentication", ErrHandshake)
		}
		auth := wire.NewWriter(128)
		auth.Uint8(hsClientAuth)
		auth.Bytes32(cfg.Creds.Cert.Marshal())
		auth.Bytes32(cfg.Creds.sign(transcript))
		if err := ch.Send(auth.Bytes()); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
	}

	// Wait for the server's Finished record, which proves key agreement
	// and (for mutual auth) that the server accepted our certificate.
	fin, _, err := ch.Recv()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	fr := wire.NewReader(fin)
	if fr.Uint8() != hsFinished || fr.Done() != nil {
		return nil, fmt.Errorf("%w: bad finished message", ErrHandshake)
	}
	return ch, nil
}

// Server performs the server side of the handshake over conn.
func Server(conn transport.Conn, cfg *Config) (*Channel, error) {
	ch, err := serverHandshake(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return ch, nil
}

func serverHandshake(conn transport.Conn, cfg *Config) (*Channel, error) {
	if cfg.Creds == nil {
		return nil, fmt.Errorf("%w: server requires credentials", ErrHandshake)
	}
	helloFrame, _, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	r := wire.NewReader(helloFrame)
	if r.Uint8() != hsClientHello {
		return nil, fmt.Errorf("%w: unexpected message", ErrHandshake)
	}
	clFlags := r.Uint8()
	clPubBytes := append([]byte(nil), r.Bytes32()...)
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if cfg.RequireClientAuth && clFlags&flagHaveCert == 0 {
		return nil, fmt.Errorf("%w: client has no certificate but one is required", ErrHandshake)
	}

	curve := ecdh.X25519()
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	clPub, err := curve.NewPublicKey(clPubBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: bad client key: %v", ErrHandshake, err)
	}
	shared, err := priv.ECDH(clPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}

	encrypt := cfg.Encrypt && clFlags&flagWantEncrypt != 0
	// Client authentication is opportunistic: a client that advertises
	// a certificate is always verified (so servers that admit anonymous
	// readers still learn the identity of GDN hosts and moderators for
	// per-operation authorization), and RequireClientAuth additionally
	// refuses anonymous clients.
	wantClientAuth := cfg.RequireClientAuth || clFlags&flagHaveCert != 0
	var srvFlags uint8
	if encrypt {
		srvFlags |= flagWantEncrypt
	}
	if wantClientAuth {
		srvFlags |= flagNeedClient
	}
	certBytes := cfg.Creds.Cert.Marshal()
	srvPubBytes := priv.PublicKey().Bytes()
	transcript := handshakeTranscript(helloFrame, srvPubBytes, certBytes)

	hello := wire.NewWriter(256)
	hello.Uint8(hsServerHello)
	hello.Uint8(srvFlags)
	hello.Bytes32(srvPubBytes)
	hello.Bytes32(certBytes)
	hello.Bytes32(cfg.Creds.sign(transcript))
	if err := conn.Send(hello.Bytes()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}

	ch, err := newChannel(conn, shared, transcript, false, encrypt)
	if err != nil {
		return nil, err
	}

	if wantClientAuth {
		authFrame, _, err := ch.Recv()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
		ar := wire.NewReader(authFrame)
		if ar.Uint8() != hsClientAuth {
			return nil, fmt.Errorf("%w: expected client auth", ErrHandshake)
		}
		certB := append([]byte(nil), ar.Bytes32()...)
		sig := append([]byte(nil), ar.Bytes32()...)
		if err := ar.Done(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
		cert, err := UnmarshalCertificate(certB)
		if err != nil {
			return nil, err
		}
		if err := cert.Verify(cfg.TrustAnchors); err != nil {
			return nil, err
		}
		if !ed25519.Verify(cert.PublicKey, transcript, sig) {
			return nil, fmt.Errorf("%w: client signature invalid", ErrHandshake)
		}
		if !cfg.roleAllowed(cert.Role) {
			return nil, fmt.Errorf("%w: role %q", ErrUnauthorized, cert.Role)
		}
		ch.peer = cert
	}

	fin := wire.NewWriter(1)
	fin.Uint8(hsFinished)
	if err := ch.Send(fin.Bytes()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	return ch, nil
}

func handshakeTranscript(clientHello, srvPub, srvCert []byte) []byte {
	h := sha256.New()
	h.Write([]byte("gdn-handshake-v1"))
	h.Write(clientHello)
	h.Write(srvPub)
	h.Write(srvCert)
	return h.Sum(nil)
}

// newChannel derives direction keys from the shared secret and
// transcript. isClient selects which key set is used for sending.
func newChannel(conn transport.Conn, shared, transcript []byte, isClient, encrypt bool) (*Channel, error) {
	prk := hkdfExtract(transcript, shared)
	cMAC := hkdfExpand(prk, "client mac", 32)
	sMAC := hkdfExpand(prk, "server mac", 32)
	ch := &Channel{conn: conn, encrypt: encrypt}
	if isClient {
		ch.sendMAC, ch.recvMAC = cMAC, sMAC
	} else {
		ch.sendMAC, ch.recvMAC = sMAC, cMAC
	}
	ch.sendHash = hmac.New(sha256.New, ch.sendMAC)
	ch.recvHash = hmac.New(sha256.New, ch.recvMAC)
	if encrypt {
		cEnc := hkdfExpand(prk, "client enc", 32)
		sEnc := hkdfExpand(prk, "server enc", 32)
		cBlock, err := aes.NewCipher(cEnc)
		if err != nil {
			return nil, err
		}
		sBlock, err := aes.NewCipher(sEnc)
		if err != nil {
			return nil, err
		}
		if isClient {
			ch.sendKey, ch.recvKey = cBlock, sBlock
		} else {
			ch.sendKey, ch.recvKey = sBlock, cBlock
		}
	}
	return ch, nil
}

// hkdfExtract and hkdfExpand implement the HKDF construction with
// HMAC-SHA256 (RFC 5869 shape, single-block expansion loop).
func hkdfExtract(salt, ikm []byte) []byte {
	m := hmac.New(sha256.New, salt)
	m.Write(ikm)
	return m.Sum(nil)
}

func hkdfExpand(prk []byte, info string, n int) []byte {
	var out, prev []byte
	for i := byte(1); len(out) < n; i++ {
		m := hmac.New(sha256.New, prk)
		m.Write(prev)
		m.Write([]byte(info))
		m.Write([]byte{i})
		prev = m.Sum(nil)
		out = append(out, prev...)
	}
	return out[:n]
}

const macSize = sha256.Size

// recPool recycles send-record buffers. The transports below never
// retain the slice passed to Send (TCP framing writes it out, netsim
// copies it), so the buffer can be reused as soon as Send returns.
var recPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// maxPooledRec bounds the record capacity retained by the pool. It is
// sized to keep records carrying a full storage chunk
// (pkgobj.DefaultChunkSize, 256 KiB) plus protocol overhead — the
// dominant large-transfer path — while dropping outliers.
const maxPooledRec = 512 << 10

// sealLocked seals one record into a pooled buffer: seq(8) || payload'
// || hmac(32), where payload' is AES-CTR encrypted when confidentiality
// is on. Caller must hold sendMu and return the buffer to recPool once
// the record has been sent.
func (ch *Channel) sealLocked(p []byte) (*[]byte, []byte) {
	seq := ch.sendSeq
	ch.sendSeq++

	n := 8 + len(p) + macSize
	bp := recPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	rec := (*bp)[:n]
	binary.BigEndian.PutUint64(rec[:8], seq)
	body := rec[8 : 8+len(p)]
	copy(body, p)
	if ch.sendKey != nil {
		ctr(ch.sendKey, seq).XORKeyStream(body, body)
	}
	ch.sendHash.Reset()
	ch.sendHash.Write(rec[:8+len(p)])
	ch.sendHash.Sum(rec[:8+len(p)])
	return bp, rec
}

func putRec(bp *[]byte) {
	if cap(*bp) <= maxPooledRec {
		recPool.Put(bp)
	}
}

// Send seals and transmits one record. The sequence number is
// authenticated, giving replay and reorder protection.
func (ch *Channel) Send(p []byte) error {
	ch.sendMu.Lock()
	defer ch.sendMu.Unlock()
	bp, rec := ch.sealLocked(p)
	err := ch.conn.Send(rec)
	putRec(bp)
	return err
}

// SendBatch seals several records and hands them to the underlying
// transport as one batch, preserving record order. It implements
// transport.BatchSender so the multiplexed RPC layer's write combining
// survives the security layer instead of being split back into one
// write per record.
func (ch *Channel) SendBatch(frames [][]byte) error {
	ch.sendMu.Lock()
	defer ch.sendMu.Unlock()
	if bs, ok := ch.conn.(transport.BatchSender); ok {
		recs := make([][]byte, len(frames))
		bps := make([]*[]byte, len(frames))
		for i, p := range frames {
			bps[i], recs[i] = ch.sealLocked(p)
		}
		err := bs.SendBatch(recs)
		for _, bp := range bps {
			putRec(bp)
		}
		return err
	}
	// Plain transport: still seal and send under one sendMu hold so the
	// batch stays atomic with respect to concurrent Send calls, as the
	// BatchSender contract requires.
	for _, p := range frames {
		bp, rec := ch.sealLocked(p)
		err := ch.conn.Send(rec)
		putRec(bp)
		if err != nil {
			return err
		}
	}
	return nil
}

// Recv opens one record, verifying integrity and sequencing.
func (ch *Channel) Recv() ([]byte, time.Duration, error) {
	ch.recvMu.Lock()
	defer ch.recvMu.Unlock()
	rec, cost, err := ch.conn.Recv()
	if err != nil {
		return nil, 0, err
	}
	if len(rec) < 8+macSize {
		transport.PutFrame(rec)
		return nil, 0, fmt.Errorf("%w: short record", ErrRecord)
	}
	seq := binary.BigEndian.Uint64(rec[:8])
	if seq != ch.recvSeq {
		transport.PutFrame(rec)
		return nil, 0, fmt.Errorf("%w: sequence %d, want %d (replay or reorder)", ErrRecord, seq, ch.recvSeq)
	}
	payloadEnd := len(rec) - macSize
	ch.recvHash.Reset()
	ch.recvHash.Write(rec[:payloadEnd])
	if !hmac.Equal(ch.recvHash.Sum(ch.recvMACBuf[:0]), rec[payloadEnd:]) {
		transport.PutFrame(rec)
		return nil, 0, fmt.Errorf("%w: bad MAC on record %d", ErrRecord, seq)
	}
	ch.recvSeq++
	body := rec[8:payloadEnd]
	if ch.recvKey != nil {
		ctr(ch.recvKey, seq).XORKeyStream(body, body)
	}
	return body, cost, nil
}

// ctr builds the per-record CTR stream: the IV is the record sequence
// number, which never repeats under one key.
func ctr(block cipher.Block, seq uint64) cipher.Stream {
	iv := make([]byte, block.BlockSize())
	binary.BigEndian.PutUint64(iv[:8], seq)
	return cipher.NewCTR(block, iv)
}

// Close closes the underlying connection.
func (ch *Channel) Close() error { return ch.conn.Close() }

// LocalAddr returns the underlying local address.
func (ch *Channel) LocalAddr() string { return ch.conn.LocalAddr() }

// RemoteAddr returns the underlying remote address.
func (ch *Channel) RemoteAddr() string { return ch.conn.RemoteAddr() }

// WrapClient adapts Client to the rpc.ConnWrapper shape so an rpc.Client
// dials through a security channel.
func (cfg *Config) WrapClient(conn transport.Conn) (transport.Conn, string, error) {
	ch, err := Client(conn, cfg)
	if err != nil {
		return nil, "", err
	}
	return ch, ch.PeerName(), nil
}

// WrapServer adapts Server to the rpc.ConnWrapper shape so an rpc.Server
// accepts connections through a security channel and sees the peer's
// authenticated principal.
func (cfg *Config) WrapServer(conn transport.Conn) (transport.Conn, string, error) {
	ch, err := Server(conn, cfg)
	if err != nil {
		return nil, "", err
	}
	return ch, ch.PeerName(), nil
}

package sec

import "strings"

// Principals are reported to RPC handlers as a single string, so the
// peer's role travels with its name using the conventional "role:name"
// form (e.g. "moderator:alice", "gos:eu-nl-vu"). Deployment code builds
// principal names with Principal and handlers authorize individual
// operations with RoleOf — this is how a Globe Object Server accepts
// lookups from anyone but state-changing commands only from moderators
// (paper §6.1).

// Principal builds the conventional principal name for a role and id.
func Principal(role, id string) string { return role + ":" + id }

// RoleOf returns the role prefix of a conventional principal name, or ""
// for anonymous or unconventionally named peers.
func RoleOf(principal string) string {
	i := strings.IndexByte(principal, ':')
	if i < 0 {
		return ""
	}
	return principal[:i]
}

// HasRole reports whether the principal's role is one of roles. An empty
// principal (anonymous peer) never has a role.
func HasRole(principal string, roles ...string) bool {
	r := RoleOf(principal)
	if r == "" {
		return false
	}
	for _, want := range roles {
		if r == want {
			return true
		}
	}
	return false
}

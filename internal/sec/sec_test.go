package sec

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"gdn/internal/netsim"
	"gdn/internal/transport"
)

// testbed holds a CA and a connected conn pair over the simulated net.
type testbed struct {
	ca     *Authority
	net    *netsim.Network
	client transport.Conn
	server transport.Conn
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	ca, err := NewAuthority("gdn-admins")
	if err != nil {
		t.Fatal(err)
	}
	n := netsim.New(nil)
	n.AddSite("a", "d1", "eu")
	n.AddSite("b", "d2", "us")
	l, err := n.Listen("b:svc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	acc := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			acc <- c
		}
	}()
	cc, err := n.Dial("a", "b:svc")
	if err != nil {
		t.Fatal(err)
	}
	return &testbed{ca: ca, net: n, client: cc, server: <-acc}
}

func (tb *testbed) creds(t *testing.T, name, role string) *Credentials {
	t.Helper()
	c, err := NewCredentials(tb.ca, name, role)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// handshake runs both sides concurrently and returns the channels.
func handshake(t *testing.T, tb *testbed, ccfg, scfg *Config) (*Channel, *Channel, error, error) {
	t.Helper()
	type res struct {
		ch  *Channel
		err error
	}
	sDone := make(chan res, 1)
	go func() {
		ch, err := Server(tb.server, scfg)
		sDone <- res{ch, err}
	}()
	cch, cerr := Client(tb.client, ccfg)
	sr := <-sDone
	return cch, sr.ch, cerr, sr.err
}

func TestOneWayAuthenticatedChannel(t *testing.T) {
	tb := newTestbed(t)
	srvCreds := tb.creds(t, "gos:site-b", RoleGOS)
	ccfg := &Config{TrustAnchors: tb.ca.Anchors(), Encrypt: true}
	scfg := &Config{Creds: srvCreds, TrustAnchors: tb.ca.Anchors(), Encrypt: true}
	cch, sch, cerr, serr := handshake(t, tb, ccfg, scfg)
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: client=%v server=%v", cerr, serr)
	}
	// Client knows the server; server sees an anonymous client.
	if cch.PeerName() != "gos:site-b" {
		t.Fatalf("client peer = %q", cch.PeerName())
	}
	if sch.Peer() != nil {
		t.Fatalf("server unexpectedly authenticated client: %v", sch.PeerName())
	}

	if err := cch.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	p, _, err := sch.Recv()
	if err != nil || string(p) != "hello" {
		t.Fatalf("recv: %q %v", p, err)
	}
	if err := sch.Send([]byte("world")); err != nil {
		t.Fatal(err)
	}
	p, _, err = cch.Recv()
	if err != nil || string(p) != "world" {
		t.Fatalf("recv: %q %v", p, err)
	}
}

func TestMutualAuthentication(t *testing.T) {
	tb := newTestbed(t)
	scfg := &Config{
		Creds:             tb.creds(t, "gos:site-b", RoleGOS),
		TrustAnchors:      tb.ca.Anchors(),
		RequireClientAuth: true,
		Encrypt:           true,
	}
	ccfg := &Config{
		Creds:        tb.creds(t, "moderator:alice", RoleModerator),
		TrustAnchors: tb.ca.Anchors(),
		Encrypt:      true,
	}
	cch, sch, cerr, serr := handshake(t, tb, ccfg, scfg)
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: client=%v server=%v", cerr, serr)
	}
	if sch.PeerName() != "moderator:alice" {
		t.Fatalf("server peer = %q", sch.PeerName())
	}
	if sch.Peer().Role != RoleModerator {
		t.Fatalf("server peer role = %q", sch.Peer().Role)
	}
	if cch.PeerName() != "gos:site-b" {
		t.Fatalf("client peer = %q", cch.PeerName())
	}
}

func TestMutualAuthRequiredButClientAnonymous(t *testing.T) {
	tb := newTestbed(t)
	scfg := &Config{
		Creds:             tb.creds(t, "gos:site-b", RoleGOS),
		TrustAnchors:      tb.ca.Anchors(),
		RequireClientAuth: true,
	}
	ccfg := &Config{TrustAnchors: tb.ca.Anchors()}
	_, _, cerr, serr := handshake(t, tb, ccfg, scfg)
	if serr == nil && cerr == nil {
		t.Fatal("anonymous client accepted on mutual-auth channel")
	}
}

func TestUntrustedAuthorityRejected(t *testing.T) {
	tb := newTestbed(t)
	rogue, err := NewAuthority("rogue-ca")
	if err != nil {
		t.Fatal(err)
	}
	rogueCreds, err := NewCredentials(rogue, "gos:fake", RoleGOS)
	if err != nil {
		t.Fatal(err)
	}
	scfg := &Config{Creds: rogueCreds, TrustAnchors: rogue.Anchors()}
	ccfg := &Config{TrustAnchors: tb.ca.Anchors()} // trusts only real CA
	_, _, cerr, _ := handshake(t, tb, ccfg, scfg)
	if !errors.Is(cerr, ErrUntrusted) {
		t.Fatalf("client error = %v, want ErrUntrusted", cerr)
	}
}

func TestRoleAuthorization(t *testing.T) {
	tb := newTestbed(t)
	scfg := &Config{
		Creds:             tb.creds(t, "gos:site-b", RoleGOS),
		TrustAnchors:      tb.ca.Anchors(),
		RequireClientAuth: true,
		AllowedRoles:      []string{RoleModerator, RoleAdmin},
	}
	// A mere user with a valid certificate must be rejected.
	ccfg := &Config{
		Creds:        tb.creds(t, "user:mallory", RoleUser),
		TrustAnchors: tb.ca.Anchors(),
	}
	_, _, _, serr := handshake(t, tb, ccfg, scfg)
	if !errors.Is(serr, ErrUnauthorized) {
		t.Fatalf("server error = %v, want ErrUnauthorized", serr)
	}
}

func TestTamperDetected(t *testing.T) {
	// A man in the middle flips a bit in a record; the receiver must
	// reject it. We build the MITM by relaying through a raw pair.
	tb := newTestbed(t)
	scfg := &Config{Creds: tb.creds(t, "gos:b", RoleGOS), TrustAnchors: tb.ca.Anchors()}
	ccfg := &Config{TrustAnchors: tb.ca.Anchors()}
	cch, sch, cerr, serr := handshake(t, tb, ccfg, scfg)
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: %v %v", cerr, serr)
	}
	// Send a record out-of-band with a corrupted MAC by writing directly
	// to the underlying conn — simulate tampering by sending a bogus
	// frame before the genuine one.
	forged := make([]byte, 8+5+32)
	copy(forged[8:], "EVIL!")
	if err := tb.client.Send(forged); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sch.Recv(); !errors.Is(err, ErrRecord) {
		t.Fatalf("forged record accepted: %v", err)
	}
	_ = cch
}

func TestReplayDetected(t *testing.T) {
	tb := newTestbed(t)
	scfg := &Config{Creds: tb.creds(t, "gos:b", RoleGOS), TrustAnchors: tb.ca.Anchors()}
	ccfg := &Config{TrustAnchors: tb.ca.Anchors()}

	// Tap the client->server conn so we can capture and replay frames.
	rawClient := tb.client
	tap := &tappingConn{Conn: rawClient}
	type res struct {
		ch  *Channel
		err error
	}
	sDone := make(chan res, 1)
	go func() {
		ch, err := Server(tb.server, scfg)
		sDone <- res{ch, err}
	}()
	cch, cerr := Client(tap, ccfg)
	sr := <-sDone
	if cerr != nil || sr.err != nil {
		t.Fatalf("handshake: %v %v", cerr, sr.err)
	}
	sch := sr.ch

	if err := cch.Send([]byte("withdraw 100")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sch.Recv(); err != nil {
		t.Fatal(err)
	}
	// Replay the captured record verbatim.
	if err := rawClient.Send(tap.last); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sch.Recv(); !errors.Is(err, ErrRecord) {
		t.Fatalf("replayed record accepted: %v", err)
	}
}

type tappingConn struct {
	transport.Conn
	last []byte
}

func (tc *tappingConn) Send(p []byte) error {
	tc.last = append([]byte(nil), p...)
	return tc.Conn.Send(p)
}

func TestConfidentialityOnWire(t *testing.T) {
	tb := newTestbed(t)
	scfg := &Config{Creds: tb.creds(t, "gos:b", RoleGOS), TrustAnchors: tb.ca.Anchors(), Encrypt: true}
	ccfg := &Config{TrustAnchors: tb.ca.Anchors(), Encrypt: true}

	tap := &tappingConn{Conn: tb.client}
	type res struct {
		ch  *Channel
		err error
	}
	sDone := make(chan res, 1)
	go func() {
		ch, err := Server(tb.server, scfg)
		sDone <- res{ch, err}
	}()
	cch, cerr := Client(tap, ccfg)
	sr := <-sDone
	if cerr != nil || sr.err != nil {
		t.Fatalf("handshake: %v %v", cerr, sr.err)
	}

	secret := []byte("the gimp 1.2 source tarball")
	if err := cch.Send(secret); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(tap.last, secret) {
		t.Fatal("plaintext visible on wire with Encrypt=true")
	}
	p, _, err := sr.ch.Recv()
	if err != nil || !bytes.Equal(p, secret) {
		t.Fatalf("decrypt failed: %q %v", p, err)
	}
}

func TestIntegrityOnlyLeavesPlaintext(t *testing.T) {
	// With Encrypt=false the payload is visible (integrity only) —
	// the cheaper mode the paper wishes TLS offered (§6.3).
	tb := newTestbed(t)
	scfg := &Config{Creds: tb.creds(t, "gos:b", RoleGOS), TrustAnchors: tb.ca.Anchors(), Encrypt: false}
	ccfg := &Config{TrustAnchors: tb.ca.Anchors(), Encrypt: false}

	tap := &tappingConn{Conn: tb.client}
	type res struct {
		ch  *Channel
		err error
	}
	sDone := make(chan res, 1)
	go func() {
		ch, err := Server(tb.server, scfg)
		sDone <- res{ch, err}
	}()
	cch, cerr := Client(tap, ccfg)
	sr := <-sDone
	if cerr != nil || sr.err != nil {
		t.Fatalf("handshake: %v %v", cerr, sr.err)
	}
	payload := []byte("public free software bits")
	cch.Send(payload)
	if !bytes.Contains(tap.last, payload) {
		t.Fatal("integrity-only channel encrypted payload")
	}
	p, _, err := sr.ch.Recv()
	if err != nil || !bytes.Equal(p, payload) {
		t.Fatalf("recv: %q %v", p, err)
	}
}

func TestCertificateMarshalRoundTrip(t *testing.T) {
	ca, _ := NewAuthority("gdn-admins")
	creds, _ := NewCredentials(ca, "moderator:bob", RoleModerator)
	b := creds.Cert.Marshal()
	got, err := UnmarshalCertificate(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(creds.Cert) {
		t.Fatal("certificate changed in round trip")
	}
	if err := got.Verify(ca.Anchors()); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateForgeryFails(t *testing.T) {
	ca, _ := NewAuthority("gdn-admins")
	creds, _ := NewCredentials(ca, "user:eve", RoleUser)
	forged := *creds.Cert
	forged.Role = RoleAdmin // privilege escalation attempt
	if err := forged.Verify(ca.Anchors()); err == nil {
		t.Fatal("forged role verified")
	}
	forged2 := *creds.Cert
	forged2.Name = "moderator:eve"
	if err := forged2.Verify(ca.Anchors()); err == nil {
		t.Fatal("forged name verified")
	}
}

func TestUnmarshalCertificateRejectsJunk(t *testing.T) {
	cases := [][]byte{nil, {}, {1, 2, 3}, bytes.Repeat([]byte{0xff}, 64)}
	for _, c := range cases {
		if _, err := UnmarshalCertificate(c); err == nil {
			t.Errorf("UnmarshalCertificate(%v) succeeded", c)
		}
	}
}

func TestChannelManyRecords(t *testing.T) {
	tb := newTestbed(t)
	scfg := &Config{Creds: tb.creds(t, "gos:b", RoleGOS), TrustAnchors: tb.ca.Anchors(), Encrypt: true}
	ccfg := &Config{TrustAnchors: tb.ca.Anchors(), Encrypt: true}
	cch, sch, cerr, serr := handshake(t, tb, ccfg, scfg)
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: %v %v", cerr, serr)
	}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 200; i++ {
			p, _, err := sch.Recv()
			if err != nil {
				done <- err
				return
			}
			if err := sch.Send(p); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 200; i++ {
		msg := []byte{byte(i), byte(i >> 8)}
		if err := cch.Send(msg); err != nil {
			t.Fatal(err)
		}
		p, _, err := cch.Recv()
		if err != nil || !bytes.Equal(p, msg) {
			t.Fatalf("record %d: %q %v", i, p, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestChannelCostPassThrough(t *testing.T) {
	tb := newTestbed(t)
	scfg := &Config{Creds: tb.creds(t, "gos:b", RoleGOS), TrustAnchors: tb.ca.Anchors()}
	ccfg := &Config{TrustAnchors: tb.ca.Anchors()}
	cch, sch, cerr, serr := handshake(t, tb, ccfg, scfg)
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: %v %v", cerr, serr)
	}
	go sch.Send([]byte("x"))
	_, cost, err := cch.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("virtual cost lost through security channel")
	}
	_ = time.Now
}

func TestGarbageHandshakeRejected(t *testing.T) {
	tb := newTestbed(t)
	scfg := &Config{Creds: tb.creds(t, "gos:b", RoleGOS), TrustAnchors: tb.ca.Anchors()}
	errCh := make(chan error, 1)
	go func() {
		_, err := Server(tb.server, scfg)
		errCh <- err
	}()
	tb.client.Send([]byte("GET / HTTP/1.0\r\n\r\n"))
	if err := <-errCh; !errors.Is(err, ErrHandshake) {
		t.Fatalf("garbage handshake: %v, want ErrHandshake", err)
	}
}

// Package sec implements the GDN's transport security (paper §6).
//
// The paper secures the second GDN version by replacing all TCP
// connections between GDN parties with TLS/SSL channels: two-way
// authenticated between GDN hosts, one-way (server only) towards user
// machines, integrity-protected always, and encrypted even though
// confidentiality is not actually required (§6.3). This package is a
// self-contained recreation of exactly those properties on top of the
// repository's frame transport:
//
//   - Certificate identities signed by a GDN authority (the paper's GDN
//     administrators who "hand out moderator privileges", §2), using
//     Ed25519.
//   - A station-to-station style handshake with X25519 key agreement,
//     one-way or mutual authentication.
//   - A record layer with HMAC-SHA256 integrity, strictly increasing
//     sequence numbers (replay protection), and optional AES-CTR
//     confidentiality so experiments can price the "superfluous
//     encryption" the paper worries about.
//
// It is an educational recreation of the TLS properties the GDN needs,
// not an implementation of RFC 2246.
package sec

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"

	"gdn/internal/wire"
)

// Roles used by the GDN deployment. Servers authorize peers by role:
// e.g. a Globe Object Server accepts state-changing commands only from
// moderators and fellow GDN hosts (paper §6.1).
const (
	RoleAdmin     = "admin"
	RoleModerator = "moderator"
	RoleGOS       = "gos"
	RoleGLS       = "gls"
	RoleGNS       = "gns"
	RoleHTTPD     = "httpd"
	RoleUser      = "user"
	// RoleMaintainer is the paper's planned fourth group (§2): "allowed
	// to manage just the contents of a package". Maintainers may modify
	// packages that name them in their replication scenario's
	// "maintainers" parameter, but cannot create or remove packages.
	RoleMaintainer = "maintainer"
)

// Errors reported by certificate handling and handshakes.
var (
	ErrBadCertificate = errors.New("sec: invalid certificate")
	ErrUntrusted      = errors.New("sec: certificate not signed by a trusted authority")
	ErrUnauthorized   = errors.New("sec: peer role not authorized")
	ErrHandshake      = errors.New("sec: handshake failed")
	ErrRecord         = errors.New("sec: record integrity failure")
)

// Certificate binds a principal name and role to an Ed25519 public key,
// signed by a GDN authority.
type Certificate struct {
	Name      string // principal, e.g. "moderator:alice" or "gos:eu-nl-vu"
	Role      string
	PublicKey ed25519.PublicKey
	Issuer    string // authority name
	Signature []byte // authority signature over signedBytes
}

// signedBytes is the canonical byte string the authority signs.
func (c *Certificate) signedBytes() []byte {
	w := wire.NewWriter(64)
	w.Str("gdn-cert-v1")
	w.Str(c.Name)
	w.Str(c.Role)
	w.Bytes32(c.PublicKey)
	w.Str(c.Issuer)
	return w.Bytes()
}

// Marshal encodes the certificate for transmission.
func (c *Certificate) Marshal() []byte {
	w := wire.NewWriter(128)
	w.Str(c.Name)
	w.Str(c.Role)
	w.Bytes32(c.PublicKey)
	w.Str(c.Issuer)
	w.Bytes32(c.Signature)
	return w.Bytes()
}

// UnmarshalCertificate decodes a certificate; it validates shape only,
// not the signature (use Verify).
func UnmarshalCertificate(b []byte) (*Certificate, error) {
	r := wire.NewReader(b)
	c := &Certificate{}
	c.Name = r.Str()
	c.Role = r.Str()
	c.PublicKey = ed25519.PublicKey(append([]byte(nil), r.Bytes32()...))
	c.Issuer = r.Str()
	c.Signature = append([]byte(nil), r.Bytes32()...)
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCertificate, err)
	}
	if len(c.PublicKey) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("%w: bad public key length %d", ErrBadCertificate, len(c.PublicKey))
	}
	if c.Name == "" || c.Role == "" {
		return nil, fmt.Errorf("%w: empty name or role", ErrBadCertificate)
	}
	return c, nil
}

// Verify checks the certificate signature against the trust anchors
// (authority name → authority public key).
func (c *Certificate) Verify(anchors map[string]ed25519.PublicKey) error {
	pub, ok := anchors[c.Issuer]
	if !ok {
		return fmt.Errorf("%w: unknown issuer %q", ErrUntrusted, c.Issuer)
	}
	if !ed25519.Verify(pub, c.signedBytes(), c.Signature) {
		return fmt.Errorf("%w: bad signature on %q", ErrUntrusted, c.Name)
	}
	return nil
}

// Authority is the GDN certificate authority, operated by the GDN
// administrators (paper §2). It issues certificates to moderators,
// object servers, HTTPDs and service daemons.
type Authority struct {
	Name string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewAuthority creates an authority with a fresh key pair.
func NewAuthority(name string) (*Authority, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Authority{Name: name, pub: pub, priv: priv}, nil
}

// PublicKey returns the trust anchor for this authority.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.pub }

// Anchors returns a trust-anchor map containing just this authority,
// convenient for configuring channels.
func (a *Authority) Anchors() map[string]ed25519.PublicKey {
	return map[string]ed25519.PublicKey{a.Name: a.pub}
}

// Issue signs a certificate binding name and role to pub.
func (a *Authority) Issue(name, role string, pub ed25519.PublicKey) *Certificate {
	c := &Certificate{Name: name, Role: role, PublicKey: pub, Issuer: a.Name}
	c.Signature = ed25519.Sign(a.priv, c.signedBytes())
	return c
}

// Credentials are a party's certificate plus its private key.
type Credentials struct {
	Cert *Certificate
	priv ed25519.PrivateKey
}

// NewCredentials generates a key pair and has the authority certify it.
func NewCredentials(a *Authority, name, role string) (*Credentials, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Credentials{Cert: a.Issue(name, role, pub), priv: priv}, nil
}

// sign produces this party's signature over a handshake transcript.
func (cr *Credentials) sign(transcript []byte) []byte {
	return ed25519.Sign(cr.priv, transcript)
}

// Equal reports whether two certificates are byte-identical.
func (c *Certificate) Equal(o *Certificate) bool {
	if c == nil || o == nil {
		return c == o
	}
	return c.Name == o.Name && c.Role == o.Role && c.Issuer == o.Issuer &&
		bytes.Equal(c.PublicKey, o.PublicKey) && bytes.Equal(c.Signature, o.Signature)
}

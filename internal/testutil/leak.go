// Package testutil holds helpers shared by the package test suites.
// It deliberately avoids importing the testing package so that
// non-test binaries (the experiments driver asserts the same leak
// invariant) can link it without dragging testing's flags along.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"time"
)

// Leaked waits up to window for the process goroutine count to drain
// back to within allowance of the baseline g0, then returns how many
// goroutines remain above the baseline (0 when the drain succeeded).
// The window exists because teardown is asynchronous: connection
// readers and lease renewers notice closed sockets on their next
// wakeup, not instantly.
func Leaked(g0, allowance int, window time.Duration) int {
	deadline := time.Now().Add(window)
	for {
		n := runtime.NumGoroutine()
		if n <= g0+allowance {
			return 0
		}
		if time.Now().After(deadline) {
			return n - g0
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// CheckMain wraps a suite's TestMain: it runs the tests and fails the
// process when goroutines leak past the end of the run. The allowance
// is generous — a whole suite legitimately leaves a few runtime and
// httptest background goroutines behind — so a failure here means a
// real leak (an unclosed server, client, or session), not jitter.
//
//	func TestMain(m *testing.M) { testutil.CheckMain(m) }
func CheckMain(m interface{ Run() int }) {
	g0 := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if leaked := Leaked(g0, 8, 5*time.Second); leaked > 0 {
			fmt.Fprintf(os.Stderr, "testutil: suite leaked %d goroutines past teardown\n%s\n",
				leaked, stacks())
			code = 1
		}
	}
	os.Exit(code)
}

// stacks renders all goroutine stacks, so a leak failure names the
// goroutines that stuck around.
func stacks() []byte {
	buf := make([]byte, 1<<20)
	return buf[:runtime.Stack(buf, true)]
}

package experiments

import (
	"fmt"
	"time"

	"gdn"
	"gdn/internal/dns"
	"gdn/internal/gls"
	"gdn/internal/gns"
	"gdn/internal/gos"
	"gdn/internal/ids"
	"gdn/internal/pkgobj"
)

// E10Admission scripts the attacks §6.1 requires the GDN to repel and
// reports whether each is rejected:
//
//   - only moderators may command object servers (requirement 1);
//   - only GDN object servers may register contact addresses
//     (requirement 2);
//   - only moderators may change the GDN zone through the naming
//     authority (requirement 3);
//   - only the naming authority's TSIG key may update the DNS zone;
//   - only authorized principals may modify package content.
//
// The final rows measure what admission costs: a remote read on a
// secured (integrity-protected, two-way authenticated) deployment
// versus an open one, in real CPU time per operation.
func E10Admission() *Table {
	t := &Table{
		ID:      "E10",
		Title:   "security admission: unauthorized paths are closed (§6.1)",
		Columns: []string{"attack / measurement", "result"},
	}

	top := gdn.DefaultTopology()
	top.Secure = true
	w := newWorld(top)
	defer w.Close()

	mod, err := w.Moderator("eu-nl-vu", "alice")
	if err != nil {
		panic(err)
	}
	if _, _, err := mod.CreatePackage("/apps/target", gdn.Scenario{
		Protocol: gdn.ProtocolClientServer,
		Servers:  w.GOSAddrs("eu-nl-vu"),
	}, gdn.Package{Files: map[string][]byte{"bin": []byte("authentic")}}); err != nil {
		panic(err)
	}

	userAuth, err := w.Credentials("user", "mallory")
	if err != nil {
		panic(err)
	}

	record := func(attack string, rejected bool) {
		result := "rejected"
		if !rejected {
			result = "ACCEPTED (security hole)"
		}
		t.AddRow(attack, result)
	}

	// 1. A user tries to modify package content.
	stub, _, err := w.BindPackage("na-ny-cu", "/apps/target")
	if err != nil {
		panic(err)
	}
	defer stub.Close()
	record("user write to package replica", stub.AddFile("bin", []byte("trojan")) != nil)
	if data, err := stub.GetFileContents("bin"); err != nil || string(data) != "authentic" {
		record("content intact after attack", false)
	} else {
		record("content intact after attack", true)
	}

	// 2. A user commands an object server.
	userGOS := gos.NewClient(w.Net, "na-ny-cu", "eu-nl-vu:gos-cmd", userAuth)
	_, _, _, err = userGOS.CreateReplica(gos.CreateRequest{
		Impl: pkgobj.Impl, Protocol: gdn.ProtocolClientServer, Role: "server",
	})
	record("user create-replica at GOS", err != nil)
	userGOS.Close()

	// 3. A user registers a contact address directly in the GLS.
	userRes, err := w.GLSResolver("na-ny-cu", userAuth)
	if err != nil {
		panic(err)
	}
	_, _, err = userRes.Insert(ids.Nil, gls.ContactAddress{
		Protocol: "clientserver", Address: "evil:addr", Impl: pkgobj.Impl, Role: "server",
	})
	record("user contact-address registration at GLS", err != nil)

	// 4. A user asks the naming authority to add a name.
	userNA := gns.NewClient(w.Net, "na-ny-cu", "hub:gns-authority", userAuth)
	_, err = userNA.Add("/apps/evil", ids.Derive("evil"))
	record("user name registration at naming authority", err != nil)
	userNA.Close()

	// 5. An unsigned dynamic update straight at a DNS server.
	zoneServer := w.RegionSites(w.Regions()[0])[0] + ":dns"
	dnsRes := w.DNSResolver("na-ny-cu")
	unsigned := dns.NewUpdate(w.Zone())
	dns.AddInsert(unsigned, dns.RR{Name: "evil." + w.Zone(), Type: dns.TypeTXT, TTL: 60, Data: "oid=0"})
	resp, _, err := dnsRes.Send(zoneServer, unsigned)
	record("unsigned DNS UPDATE at zone server", err == nil && resp.RCode != dns.RCodeOK)

	// 6. A forged TSIG (wrong key) dynamic update.
	forged := dns.NewUpdate(w.Zone())
	dns.AddInsert(forged, dns.RR{Name: "evil2." + w.Zone(), Type: dns.TypeTXT, TTL: 60, Data: "oid=0"})
	if err := dns.SignTSIG(forged, "na-key", []byte("guessed-secret"), time.Now().Unix()); err != nil {
		panic(err)
	}
	resp, _, err = dnsRes.Send(zoneServer, forged)
	record("forged-TSIG DNS UPDATE at zone server", err == nil && resp.RCode != dns.RCodeOK)

	// --- overhead: what admission costs ------------------------------
	secured := measureE10Read(w, "/apps/target")
	t.AddRow("secured remote read ns/op", fmt.Sprint(secured))

	open := func() int64 {
		ow := newWorld(gdn.DefaultTopology())
		defer ow.Close()
		omod, err := ow.Moderator("eu-nl-vu", "alice")
		if err != nil {
			panic(err)
		}
		if _, _, err := omod.CreatePackage("/apps/target", gdn.Scenario{
			Protocol: gdn.ProtocolClientServer,
			Servers:  ow.GOSAddrs("eu-nl-vu"),
		}, gdn.Package{Files: map[string][]byte{"bin": []byte("authentic")}}); err != nil {
			panic(err)
		}
		return measureE10Read(ow, "/apps/target")
	}()
	t.AddRow("open remote read ns/op", fmt.Sprint(open))
	t.AddRow("admission overhead", fmt.Sprintf("%.2fx", float64(secured)/float64(open)))
	return t
}

// measureE10Read times remote reads of the target package from another
// continent, returning real ns/op. A warmup pass fills connection
// pools and code caches so the secured and open deployments compare
// fairly.
func measureE10Read(w *gdn.World, name string) int64 {
	stub, _, err := w.BindPackage("ap-jp-ut", name)
	if err != nil {
		panic(err)
	}
	defer stub.Close()
	const iters = 300
	for i := 0; i < 100; i++ {
		if _, err := stub.GetFileContents("bin"); err != nil {
			panic(err)
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := stub.GetFileContents("bin"); err != nil {
			panic(err)
		}
	}
	return time.Since(start).Nanoseconds() / iters
}

package experiments

import (
	"fmt"
	"time"

	"gdn/internal/netsim"
	"gdn/internal/sec"
	"gdn/internal/transport"
)

// E6Config tunes the channel-cost experiment.
type E6Config struct {
	// Handshakes measured per mode (default 30).
	Handshakes int
	// Transfers measured per payload size (default 200).
	Transfers int
	// Payloads in bytes (default 1 KiB, 64 KiB, 1 MiB).
	Payloads []int
}

// E6ChannelCost reproduces the §6.3 worry: "we are paying for
// something we do not need: confidentiality. TLS and SSL provide
// confidentiality as well as authentication and integrity protection.
// We are interested only in the latter two. If performance is affected
// too negatively by the superfluous encryption and decryption we will
// have to rethink our security scheme."
//
// The table compares plain connections, integrity-only channels and
// integrity+confidentiality channels on real CPU time (the virtual
// network cost is identical up to MAC/padding bytes), plus the
// handshake cost of one-way versus two-way authentication (Fig 4).
func E6ChannelCost(cfg E6Config) *Table {
	if cfg.Handshakes <= 0 {
		cfg.Handshakes = 30
	}
	if cfg.Transfers <= 0 {
		cfg.Transfers = 200
	}
	if len(cfg.Payloads) == 0 {
		cfg.Payloads = []int{1 << 10, 64 << 10, 1 << 20}
	}

	t := &Table{
		ID:      "E6",
		Title:   "security channel cost: the price of superfluous encryption (§6.3, Fig 4)",
		Columns: []string{"measurement", "mode", "ns/op", "MB/s", "vs plain"},
	}

	authority, err := sec.NewAuthority("e6-root")
	if err != nil {
		panic(err)
	}
	serverCreds, err := sec.NewCredentials(authority, sec.Principal(sec.RoleGOS, "server"), sec.RoleGOS)
	if err != nil {
		panic(err)
	}
	clientCreds, err := sec.NewCredentials(authority, sec.Principal(sec.RoleModerator, "client"), sec.RoleModerator)
	if err != nil {
		panic(err)
	}

	// Handshakes: one-way (browser→GDN host, Fig 4 link 1) vs two-way
	// (GDN host↔GDN host, link 3).
	oneWay := measureHandshake(cfg.Handshakes, &sec.Config{
		TrustAnchors: authority.Anchors(),
	}, &sec.Config{
		Creds:        serverCreds,
		TrustAnchors: authority.Anchors(),
	})
	t.AddRow("handshake", "one-way auth", fmt.Sprint(oneWay.Nanoseconds()/int64(cfg.Handshakes)), "-", "-")
	twoWay := measureHandshake(cfg.Handshakes, &sec.Config{
		Creds:        clientCreds,
		TrustAnchors: authority.Anchors(),
	}, &sec.Config{
		Creds:             serverCreds,
		TrustAnchors:      authority.Anchors(),
		RequireClientAuth: true,
	})
	t.AddRow("handshake", "two-way auth", fmt.Sprint(twoWay.Nanoseconds()/int64(cfg.Handshakes)),
		"-", fmt.Sprintf("%.2fx one-way", float64(twoWay)/float64(oneWay)))

	// Transfers per payload size and protection mode.
	for _, payload := range cfg.Payloads {
		var plain time.Duration
		for _, mode := range []string{"plain", "integrity", "integrity+encryption"} {
			elapsed := measureTransfer(cfg.Transfers, payload, mode, authority, serverCreds, clientCreds)
			perOp := elapsed.Nanoseconds() / int64(cfg.Transfers)
			mbps := float64(payload) * float64(cfg.Transfers) / elapsed.Seconds() / 1e6
			ratio := "1.00x"
			if mode == "plain" {
				plain = elapsed
			} else {
				ratio = fmt.Sprintf("%.2fx", float64(elapsed)/float64(plain))
			}
			t.AddRow(fmt.Sprintf("%dKB transfer", payload/1024), mode, fmt.Sprint(perOp), fmt.Sprintf("%.0f", mbps), ratio)
		}
	}
	return t
}

// e6Pair builds a fresh connected (client, server) raw pair.
func e6Pair() (transport.Conn, transport.Conn) {
	net := netsim.New(nil)
	net.AddSite("a", "a", "eu")
	net.AddSite("b", "b", "us")
	l, err := net.Listen("b:svc")
	if err != nil {
		panic(err)
	}
	type accepted struct {
		conn transport.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := l.Accept()
		ch <- accepted{c, err}
	}()
	client, err := net.Dial("a", "b:svc")
	if err != nil {
		panic(err)
	}
	srv := <-ch
	if srv.err != nil {
		panic(srv.err)
	}
	l.Close()
	return client, srv.conn
}

func measureHandshake(n int, clientCfg, serverCfg *sec.Config) time.Duration {
	var total time.Duration
	for i := 0; i < n; i++ {
		cConn, sConn := e6Pair()
		done := make(chan error, 1)
		start := time.Now()
		go func() {
			_, err := sec.Server(sConn, serverCfg)
			done <- err
		}()
		if _, err := sec.Client(cConn, clientCfg); err != nil {
			panic(err)
		}
		if err := <-done; err != nil {
			panic(err)
		}
		total += time.Since(start)
		cConn.Close()
		sConn.Close()
	}
	return total
}

func measureTransfer(n, payload int, mode string, authority *sec.Authority, serverCreds, clientCreds *sec.Credentials) time.Duration {
	cConn, sConn := e6Pair()
	defer cConn.Close()
	defer sConn.Close()

	var client, server transport.Conn = cConn, sConn
	if mode != "plain" {
		encrypt := mode == "integrity+encryption"
		serverCfg := &sec.Config{
			Creds: serverCreds, TrustAnchors: authority.Anchors(),
			RequireClientAuth: true, Encrypt: encrypt,
		}
		clientCfg := &sec.Config{
			Creds: clientCreds, TrustAnchors: authority.Anchors(), Encrypt: encrypt,
		}
		type res struct {
			ch  *sec.Channel
			err error
		}
		done := make(chan res, 1)
		go func() {
			ch, err := sec.Server(sConn, serverCfg)
			done <- res{ch, err}
		}()
		cch, err := sec.Client(cConn, clientCfg)
		if err != nil {
			panic(err)
		}
		r := <-done
		if r.err != nil {
			panic(r.err)
		}
		client, server = cch, r.ch
	}

	buf := make([]byte, payload)
	recvDone := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			p, _, err := server.Recv()
			if err != nil {
				recvDone <- err
				return
			}
			transport.PutFrame(p)
		}
		recvDone <- nil
	}()
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := client.Send(buf); err != nil {
			panic(err)
		}
	}
	if err := <-recvDone; err != nil {
		panic(err)
	}
	return time.Since(start)
}

package experiments

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"

	"gdn"
)

// E11Config tunes the replica-failover experiment.
type E11Config struct {
	// Replicas is the number of object servers hosting the package
	// (one master plus slaves, all in one shared-leaf region).
	// Default 3.
	Replicas int
	// Fleet is the number of concurrent downloads in flight when a
	// replica is killed. Default 8.
	Fleet int
	// FileSize is the package payload in bytes. Default 8 MiB — larger
	// than the stream credit window plus HTTP buffering, so every
	// transfer is genuinely mid-stream when the kill lands.
	FileSize int
}

// E11Failover is the kill-a-replica-mid-fleet experiment: the
// replica-health layer's reason to exist. A package is replicated
// within one region whose sites share a location-service record (so a
// binding client learns every replica in one lookup), a fleet of
// concurrent downloads streams through remote GDN HTTPDs, and one
// read replica is crashed while all of them are mid-transfer. With
// truthful location data and ranked-peer failover, every download
// must finish bit-exact with zero HTTP errors — the property that
// lets later PRs buy availability by simply adding replicas.
func E11Failover(cfg E11Config) *Table {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.Fleet <= 0 {
		cfg.Fleet = 8
	}
	if cfg.FileSize <= 0 {
		cfg.FileSize = 8 << 20
	}

	t := &Table{
		ID:    "E11",
		Title: "replica failover: kill a read replica under a fleet of downloads",
		Columns: []string{
			"phase", "downloads", "ok", "http 5xx", "bit-exact",
		},
		Notes: fmt.Sprintf("%d masterslave replicas in one shared-leaf region, %d concurrent %d KiB downloads, one slave crashed mid-fleet",
			cfg.Replicas, cfg.Fleet, cfg.FileSize/1024),
	}

	run := newE11World(cfg)
	defer run.close()

	for _, phase := range []string{"all replicas up", "slave killed mid-fleet", "after the kill"} {
		killMidFleet := phase == "slave killed mid-fleet"
		ok, bad, exact := run.fleet(cfg.Fleet, killMidFleet)
		t.AddRow(phase, fmt.Sprint(cfg.Fleet), fmt.Sprint(ok), fmt.Sprint(bad), fmt.Sprint(exact))
	}
	return t
}

// e11World is the deployed scenario: replicas in "eu", HTTPDs and
// clients in "na".
type e11World struct {
	w       *gdn.World
	ts      *httptest.Server
	content []byte
	victim  string
}

func newE11World(cfg E11Config) *e11World {
	var euSites []string
	for i := 0; i < cfg.Replicas; i++ {
		euSites = append(euSites, fmt.Sprintf("eu-%d", i+1))
	}
	w := newWorld(gdn.Topology{
		Regions: map[string][]string{
			"eu": euSites,
			"na": {"na-1", "na-2"},
		},
		// One record per region: the binding lookup returns every eu
		// replica, which is what the ranked peer set fails over across.
		SharedRegionLeaves: true,
	})

	content := bytes.Repeat([]byte("gdn failover experiment "), cfg.FileSize/24+1)[:cfg.FileSize]
	mod, err := w.Moderator("eu-1", "e11-moderator")
	if err != nil {
		panic(err)
	}
	if _, _, err := mod.CreatePackage("/apps/ha", gdn.Scenario{
		Protocol: gdn.ProtocolMasterSlave,
		Servers:  w.GOSAddrs(euSites...),
	}, gdn.Package{Files: map[string][]byte{"blob": content}}); err != nil {
		panic(fmt.Sprintf("e11: deploy: %v", err))
	}

	h, err := w.HTTPD("na-1", gdn.HTTPDConfig{})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(h)
	return &e11World{
		w:       w,
		ts:      ts,
		content: content,
		// The last slave: never the master, so writes stay possible.
		victim: euSites[len(euSites)-1],
	}
}

func (r *e11World) close() {
	r.ts.Close()
	r.w.Close()
}

// fleet runs n concurrent downloads; when kill is set, the victim
// replica's site is crashed as soon as every transfer is mid-stream.
// It reports completed downloads, HTTP >= 500 responses, and how many
// bodies matched the deployed content byte for byte.
func (r *e11World) fleet(n int, kill bool) (ok, bad5xx, bitExact int) {
	var started, okC, badC, exactC atomic.Int64
	firstBytes := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(r.ts.URL + "/pkg/apps/ha/-/blob")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode >= 500 {
				badC.Add(1)
				return
			}
			// Read a head slice, signal the killer once every transfer
			// is provably mid-stream, then drain.
			head := make([]byte, 64<<10)
			if _, err := io.ReadFull(resp.Body, head); err != nil {
				return
			}
			if started.Add(1) == int64(n) {
				close(firstBytes)
			}
			rest, err := io.ReadAll(resp.Body)
			if err != nil {
				return
			}
			okC.Add(1)
			if bytes.Equal(append(head, rest...), r.content) {
				exactC.Add(1)
			}
		}()
	}
	if kill {
		<-firstBytes
		r.w.Net.SetDown(r.victim, true)
	}
	wg.Wait()
	return int(okC.Load()), int(badC.Load()), int(exactC.Load())
}

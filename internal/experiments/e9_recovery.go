package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gdn"
	"gdn/internal/core"
	"gdn/internal/gos"
	"gdn/internal/pkgobj"
)

// E9Config tunes the persistence experiment.
type E9Config struct {
	// Sizes of the checkpointed package (default 100 KiB, 1 MiB, 10 MiB).
	Sizes []int
}

// E9Recovery measures the object-server persistence path of §4:
// "Globe Object Servers allow replicas to save their state during a
// reboot and reconstruct themselves afterwards." For each package size
// the table reports the checkpoint time, the on-disk checkpoint size,
// the recovery (restart) time, and verifies that the recovered replica
// answers a bind with intact content.
func E9Recovery(cfg E9Config) *Table {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{100 << 10, 1 << 20, 10 << 20}
	}
	t := &Table{
		ID:      "E9",
		Title:   "object-server checkpoint and crash recovery (§4)",
		Columns: []string{"package KB", "checkpoint ms", "disk KB", "recovery ms", "verified"},
		Notes:   "wall-clock times; recovery includes replica reconstruction and GLS re-registration",
	}
	for _, size := range cfg.Sizes {
		ckptMS, diskKB, recMS, ok := runE9(size)
		verified := "yes"
		if !ok {
			verified = "NO"
		}
		t.AddRow(fmt.Sprint(size/1024),
			fmt.Sprintf("%.2f", ckptMS),
			fmt.Sprintf("%.0f", diskKB),
			fmt.Sprintf("%.2f", recMS),
			verified,
		)
	}
	return t
}

func runE9(size int) (ckptMS, diskKB, recMS float64, verified bool) {
	w := newWorld(gdn.DefaultTopology())
	defer w.Close()

	stateDir, err := os.MkdirTemp("", "gdn-e9-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(stateDir)

	// A dedicated GOS with persistence (the world's default servers
	// run without state directories).
	site := "eu-nl-vu"
	rt, err := w.UserRuntime(site)
	if err != nil {
		panic(err)
	}
	srv, err := gos.Start(w.Net, gos.Config{
		Site:     site,
		CmdAddr:  site + ":gos9-cmd",
		ObjAddr:  site + ":gos9-obj",
		Runtime:  rt,
		StateDir: stateDir,
	})
	if err != nil {
		panic(err)
	}

	content := make([]byte, size)
	for i := range content {
		content[i] = byte(i)
	}
	staged := pkgobj.New()
	stub := pkgobj.NewStub(core.NewLocalLR(gdn.OID{}, staged))
	if err := stub.AddFile("pkg.tar", content); err != nil {
		panic(err)
	}
	state, err := staged.MarshalState()
	if err != nil {
		panic(err)
	}
	refs, err := pkgobj.StateRefs(state)
	if err != nil {
		panic(err)
	}
	cl := gos.NewClient(w.Net, site, site+":gos9-cmd", nil)
	if _, _, err := cl.PutChunks(staged.Store(), refs); err != nil {
		panic(err)
	}
	oid, _, _, err := cl.CreateReplica(gos.CreateRequest{
		Impl: pkgobj.Impl, Protocol: gdn.ProtocolClientServer, Role: "server",
		InitState: state,
	})
	if err != nil {
		panic(err)
	}

	start := time.Now()
	if err := cl.Checkpoint(); err != nil {
		panic(err)
	}
	ckptMS = float64(time.Since(start)) / 1e6
	cl.Close()

	var diskBytes int64
	entries, err := os.ReadDir(stateDir)
	if err != nil {
		panic(err)
	}
	for _, e := range entries {
		info, err := os.Stat(filepath.Join(stateDir, e.Name()))
		if err == nil {
			diskBytes += info.Size()
		}
	}
	diskKB = float64(diskBytes) / 1024

	// Crash, then restart on a fresh command address (the simulated
	// listener namespace is per-address) with the same object address.
	srv.Close()
	start = time.Now()
	srv2, err := gos.Start(w.Net, gos.Config{
		Site:     site,
		CmdAddr:  site + ":gos9-cmd2",
		ObjAddr:  site + ":gos9-obj",
		Runtime:  rt,
		StateDir: stateDir,
	})
	if err != nil {
		panic(err)
	}
	recMS = float64(time.Since(start)) / 1e6
	defer srv2.Close()

	// A client on another continent binds and verifies the content.
	userRT, err := w.UserRuntime("na-ny-cu")
	if err != nil {
		panic(err)
	}
	lr, _, err := userRT.Bind(oid)
	if err != nil {
		return ckptMS, diskKB, recMS, false
	}
	defer lr.Close()
	got, err := pkgobj.NewStub(lr).GetFileContents("pkg.tar")
	verified = err == nil && len(got) == size && got[size-1] == byte(size-1)
	return ckptMS, diskKB, recMS, verified
}

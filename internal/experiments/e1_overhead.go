package experiments

import (
	"fmt"
	"time"

	"gdn/internal/core"
	"gdn/internal/ids"
	"gdn/internal/pkgobj"
	"gdn/internal/wire"
)

// E1Config tunes the subobject-overhead experiment.
type E1Config struct {
	// Iterations per measured mode (default 20000).
	Iterations int
	// FileSize of the file read in each invocation (default 4 KiB).
	FileSize int
}

// E1Overhead measures what the paper's layered local representative
// (Fig 1b) costs on top of a plain method call: the control subobject
// marshals every call into an opaque invocation message which the
// replication subobject routes — indirection and encoding that a
// monolithic object does not pay. Three modes:
//
//	direct     call the semantics subobject natively (no framework)
//	local LR   full subobject stack, local replication (marshal only)
//	marshal    invocation encode+decode round trip alone
//
// Remote invocation cost is covered by E5/E8; this experiment isolates
// the composition itself, which the paper argues is the acceptable
// price of per-object replication flexibility (§3.3).
func E1Overhead(cfg E1Config) *Table {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 20000
	}
	if cfg.FileSize <= 0 {
		cfg.FileSize = 4 << 10
	}

	content := make([]byte, cfg.FileSize)
	for i := range content {
		content[i] = byte(i)
	}

	t := &Table{
		ID:      "E1",
		Title:   "subobject composition overhead (Fig 1b, §3.3)",
		Columns: []string{"mode", "ns/op", "vs direct"},
		Notes:   fmt.Sprintf("getFileContents of a %d-byte file, %d iterations", cfg.FileSize, cfg.Iterations),
	}

	direct := measureE1Direct(cfg, content)
	t.AddRow("direct semantics call", fmt.Sprint(direct.Nanoseconds()/int64(cfg.Iterations)), "1.00x")

	localLR := measureE1LocalLR(cfg, content)
	t.AddRow("through LR subobject stack",
		fmt.Sprint(localLR.Nanoseconds()/int64(cfg.Iterations)),
		fmt.Sprintf("%.2fx", float64(localLR)/float64(direct)))

	marshal := measureE1Marshal(cfg)
	t.AddRow("invocation marshal+unmarshal only",
		fmt.Sprint(marshal.Nanoseconds()/int64(cfg.Iterations)),
		fmt.Sprintf("%.2fx", float64(marshal)/float64(direct)))

	return t
}

func e1Package(content []byte) *pkgobj.Package {
	p := pkgobj.New()
	if _, err := p.Invoke(core.Invocation{
		Method: pkgobj.MethodAddFile, Write: true,
		Args: addFileArgs("f", content),
	}); err != nil {
		panic(err)
	}
	return p
}

func addFileArgs(path string, data []byte) []byte {
	// Mirrors the stub's encoding; kept local so the measurement loop
	// has zero allocations beyond the call under test.
	w := wire.NewWriter(8 + len(path) + len(data))
	w.Str(path)
	w.Bytes32(data)
	return w.Bytes()
}

func getFileArgs(path string) []byte {
	w := wire.NewWriter(4 + len(path))
	w.Str(path)
	return w.Bytes()
}

// measureE1Direct times native semantics invocations.
func measureE1Direct(cfg E1Config, content []byte) time.Duration {
	p := e1Package(content)
	inv := core.Invocation{Method: pkgobj.MethodGetFile, Args: getFileArgs("f")}
	start := time.Now()
	for i := 0; i < cfg.Iterations; i++ {
		if _, err := p.Invoke(inv); err != nil {
			panic(err)
		}
	}
	return time.Since(start)
}

// measureE1LocalLR times the same call through a full local
// representative (control + replication subobjects).
func measureE1LocalLR(cfg E1Config, content []byte) time.Duration {
	p := e1Package(content)
	lr := core.NewLocalLR(ids.Derive("e1"), p)
	defer lr.Close()
	args := getFileArgs("f")
	start := time.Now()
	for i := 0; i < cfg.Iterations; i++ {
		if _, _, err := lr.Invoke(pkgobj.MethodGetFile, false, args); err != nil {
			panic(err)
		}
	}
	return time.Since(start)
}

// measureE1Marshal times invocation encoding alone.
func measureE1Marshal(cfg E1Config) time.Duration {
	inv := core.Invocation{Method: pkgobj.MethodGetFile, Args: getFileArgs("f")}
	start := time.Now()
	for i := 0; i < cfg.Iterations; i++ {
		b := inv.Encode()
		if _, err := core.DecodeInvocation(b); err != nil {
			panic(err)
		}
	}
	return time.Since(start)
}

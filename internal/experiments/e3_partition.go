package experiments

import (
	"fmt"
	"time"

	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/netsim"
	"gdn/internal/rpc"
)

// E3Config tunes the root-partitioning experiment.
type E3Config struct {
	// Objects registered (default 400).
	Objects int
	// LookupsPerObject from the remote region (default 2).
	LookupsPerObject int
	// SubnodeCounts to sweep (default 1, 2, 4, 8, 16).
	SubnodeCounts []int
}

// E3RootPartitioning reproduces the §3.5 scalability fix: "partition a
// directory node into one or more directory subnodes", each owning a
// hash slice of the identifier space. Objects live in one region;
// lookups come from the other region so every one of them climbs
// through the root. The table reports how the root's load spreads as
// the subnode count grows — the maximum per-subnode load is the
// bottleneck the paper is eliminating.
func E3RootPartitioning(cfg E3Config) *Table {
	if cfg.Objects <= 0 {
		cfg.Objects = 400
	}
	if cfg.LookupsPerObject <= 0 {
		cfg.LookupsPerObject = 2
	}
	if len(cfg.SubnodeCounts) == 0 {
		cfg.SubnodeCounts = []int{1, 2, 4, 8, 16}
	}

	t := &Table{
		ID:      "E3",
		Title:   "GLS root-node partitioning into subnodes (§3.5)",
		Columns: []string{"subnodes", "root ops total", "max/subnode", "min/subnode", "vs unpartitioned max"},
		Notes:   fmt.Sprintf("%d objects in eu, %d lookups each from us; every lookup and pointer install crosses the root", cfg.Objects, cfg.LookupsPerObject),
	}

	var baselineMax int64
	for _, n := range cfg.SubnodeCounts {
		total, maxLoad, minLoad := runE3(cfg, n)
		if n == 1 {
			baselineMax = maxLoad
		}
		ratio := "1.00"
		if baselineMax > 0 {
			ratio = fmt.Sprintf("%.2f", float64(maxLoad)/float64(baselineMax))
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(total), fmt.Sprint(maxLoad), fmt.Sprint(minLoad), ratio)
	}
	return t
}

// E3OneWayPartition exercises the us-to-root link under asymmetric
// failure, the case a symmetric partition model cannot express: first
// the request direction is cut (us-a -> hub-0, lookups die on the way
// up), then the reply direction (hub-0 -> us-a, lookups die on the way
// back). Lookups must fail in both cut phases and recover after each
// heal — the healed phases tolerate a short settle window because the
// rpc dial-backoff gate deliberately holds a failing peer out for up
// to a second.
func E3OneWayPartition() *Table {
	// Reply-direction cuts surface as call timeouts, so the 30s
	// default deadline would stretch each failed lookup into half a
	// minute. Each Client copies the default into its Timeout field at
	// creation, so lowering the var before the tree is deployed reaches
	// every client without racing in-flight calls.
	savedTimeout := rpc.DefaultTimeout
	rpc.DefaultTimeout = 500 * time.Millisecond
	defer func() { rpc.DefaultTimeout = savedTimeout }()

	net := netsim.New(nil)
	net.AddSite("hub-0", "hub", "core")
	net.AddSite("eu-a", "eu-a", "eu")
	net.AddSite("us-a", "us-a", "us")

	tree, err := gls.Deploy(net, gls.DomainSpec{
		Name: "root", Sites: []string{"hub-0"},
		Children: []gls.DomainSpec{
			{Name: "eu", Sites: []string{"eu-a"}, Children: []gls.DomainSpec{gls.Leaf("eu/a", "eu-a")}},
			{Name: "us", Sites: []string{"us-a"}, Children: []gls.DomainSpec{gls.Leaf("us/a", "us-a")}},
		},
	})
	if err != nil {
		panic(err)
	}
	defer tree.Close()

	owner, err := tree.Resolver("eu-a", "eu/a")
	if err != nil {
		panic(err)
	}
	defer owner.Close()
	remote, err := tree.Resolver("us-a", "us/a")
	if err != nil {
		panic(err)
	}
	defer remote.Close()

	const objects = 8
	oids := make([]ids.OID, objects)
	for i := range oids {
		oid, _, err := owner.Insert(ids.Nil, gls.ContactAddress{
			Protocol: "clientserver", Address: "eu-a:gos-obj", Impl: "package/1", Role: "server",
		})
		if err != nil {
			panic(err)
		}
		oids[i] = oid
	}

	t := &Table{
		ID:      "E3b",
		Title:   "GLS lookups across one-way partitions of the root link",
		Columns: []string{"phase", "lookups", "ok", "failed"},
		Notes:   "objects in eu, lookups from us; every lookup crosses the us->root link, cut one direction at a time",
	}

	lookups := func() (ok, failed int) {
		for _, oid := range oids {
			if _, _, err := remote.Lookup(oid); err == nil {
				ok++
			} else {
				failed++
			}
		}
		return ok, failed
	}
	settle := func() {
		deadline := time.Now().Add(3 * time.Second)
		for {
			if _, _, err := remote.Lookup(oids[0]); err == nil || time.Now().After(deadline) {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	phases := []struct {
		name     string
		change   func()
		expectOK bool
	}{
		{"healthy", nil, true},
		{"cut us->root (requests lost)", func() { net.PartitionOneWay("us-a", "hub-0") }, false},
		{"healed us->root", func() { net.HealOneWay("us-a", "hub-0") }, true},
		{"cut root->us (replies lost)", func() { net.PartitionOneWay("hub-0", "us-a") }, false},
		{"healed root->us", func() { net.HealOneWay("hub-0", "us-a") }, true},
	}
	for _, p := range phases {
		if p.change != nil {
			p.change()
		}
		if p.expectOK {
			settle()
		}
		ok, failed := lookups()
		if p.expectOK && failed > 0 {
			panic(fmt.Sprintf("E3b phase %q: %d/%d lookups failed on a healthy path", p.name, failed, objects))
		}
		if !p.expectOK && ok > 0 {
			panic(fmt.Sprintf("E3b phase %q: %d/%d lookups succeeded across a cut link", p.name, ok, objects))
		}
		t.AddRow(p.name, fmt.Sprint(objects), fmt.Sprint(ok), fmt.Sprint(failed))
	}
	return t
}

func runE3(cfg E3Config, subnodes int) (total, maxLoad, minLoad int64) {
	net := netsim.New(nil)
	rootSites := make([]string, subnodes)
	for i := range rootSites {
		site := fmt.Sprintf("hub-%d", i)
		net.AddSite(site, "hub", "core")
		rootSites[i] = site
	}
	net.AddSite("eu-a", "eu-a", "eu")
	net.AddSite("us-a", "us-a", "us")

	tree, err := gls.Deploy(net, gls.DomainSpec{
		Name: "root", Sites: rootSites,
		Children: []gls.DomainSpec{
			{Name: "eu", Sites: []string{"eu-a"}, Children: []gls.DomainSpec{gls.Leaf("eu/a", "eu-a")}},
			{Name: "us", Sites: []string{"us-a"}, Children: []gls.DomainSpec{gls.Leaf("us/a", "us-a")}},
		},
	})
	if err != nil {
		panic(err)
	}
	defer tree.Close()

	owner, err := tree.Resolver("eu-a", "eu/a")
	if err != nil {
		panic(err)
	}
	defer owner.Close()
	remote, err := tree.Resolver("us-a", "us/a")
	if err != nil {
		panic(err)
	}
	defer remote.Close()

	oids := make([]ids.OID, cfg.Objects)
	for i := range oids {
		oid, _, err := owner.Insert(ids.Nil, gls.ContactAddress{
			Protocol: "clientserver", Address: "eu-a:gos-obj", Impl: "package/1", Role: "server",
		})
		if err != nil {
			panic(err)
		}
		oids[i] = oid
	}
	for i := 0; i < cfg.LookupsPerObject; i++ {
		for _, oid := range oids {
			if _, _, err := remote.Lookup(oid); err != nil {
				panic(err)
			}
		}
	}

	minLoad = int64(1) << 62
	for _, node := range tree.Nodes("root") {
		load := node.Stats().Total()
		total += load
		if load > maxLoad {
			maxLoad = load
		}
		if load < minLoad {
			minLoad = load
		}
	}
	return total, maxLoad, minLoad
}

package experiments

import (
	"fmt"

	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/netsim"
)

// E3Config tunes the root-partitioning experiment.
type E3Config struct {
	// Objects registered (default 400).
	Objects int
	// LookupsPerObject from the remote region (default 2).
	LookupsPerObject int
	// SubnodeCounts to sweep (default 1, 2, 4, 8, 16).
	SubnodeCounts []int
}

// E3RootPartitioning reproduces the §3.5 scalability fix: "partition a
// directory node into one or more directory subnodes", each owning a
// hash slice of the identifier space. Objects live in one region;
// lookups come from the other region so every one of them climbs
// through the root. The table reports how the root's load spreads as
// the subnode count grows — the maximum per-subnode load is the
// bottleneck the paper is eliminating.
func E3RootPartitioning(cfg E3Config) *Table {
	if cfg.Objects <= 0 {
		cfg.Objects = 400
	}
	if cfg.LookupsPerObject <= 0 {
		cfg.LookupsPerObject = 2
	}
	if len(cfg.SubnodeCounts) == 0 {
		cfg.SubnodeCounts = []int{1, 2, 4, 8, 16}
	}

	t := &Table{
		ID:      "E3",
		Title:   "GLS root-node partitioning into subnodes (§3.5)",
		Columns: []string{"subnodes", "root ops total", "max/subnode", "min/subnode", "vs unpartitioned max"},
		Notes:   fmt.Sprintf("%d objects in eu, %d lookups each from us; every lookup and pointer install crosses the root", cfg.Objects, cfg.LookupsPerObject),
	}

	var baselineMax int64
	for _, n := range cfg.SubnodeCounts {
		total, maxLoad, minLoad := runE3(cfg, n)
		if n == 1 {
			baselineMax = maxLoad
		}
		ratio := "1.00"
		if baselineMax > 0 {
			ratio = fmt.Sprintf("%.2f", float64(maxLoad)/float64(baselineMax))
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(total), fmt.Sprint(maxLoad), fmt.Sprint(minLoad), ratio)
	}
	return t
}

func runE3(cfg E3Config, subnodes int) (total, maxLoad, minLoad int64) {
	net := netsim.New(nil)
	rootSites := make([]string, subnodes)
	for i := range rootSites {
		site := fmt.Sprintf("hub-%d", i)
		net.AddSite(site, "hub", "core")
		rootSites[i] = site
	}
	net.AddSite("eu-a", "eu-a", "eu")
	net.AddSite("us-a", "us-a", "us")

	tree, err := gls.Deploy(net, gls.DomainSpec{
		Name: "root", Sites: rootSites,
		Children: []gls.DomainSpec{
			{Name: "eu", Sites: []string{"eu-a"}, Children: []gls.DomainSpec{gls.Leaf("eu/a", "eu-a")}},
			{Name: "us", Sites: []string{"us-a"}, Children: []gls.DomainSpec{gls.Leaf("us/a", "us-a")}},
		},
	})
	if err != nil {
		panic(err)
	}
	defer tree.Close()

	owner, err := tree.Resolver("eu-a", "eu/a")
	if err != nil {
		panic(err)
	}
	defer owner.Close()
	remote, err := tree.Resolver("us-a", "us/a")
	if err != nil {
		panic(err)
	}
	defer remote.Close()

	oids := make([]ids.OID, cfg.Objects)
	for i := range oids {
		oid, _, err := owner.Insert(ids.Nil, gls.ContactAddress{
			Protocol: "clientserver", Address: "eu-a:gos-obj", Impl: "package/1", Role: "server",
		})
		if err != nil {
			panic(err)
		}
		oids[i] = oid
	}
	for i := 0; i < cfg.LookupsPerObject; i++ {
		for _, oid := range oids {
			if _, _, err := remote.Lookup(oid); err != nil {
				panic(err)
			}
		}
	}

	minLoad = int64(1) << 62
	for _, node := range tree.Nodes("root") {
		load := node.Stats().Total()
		total += load
		if load > maxLoad {
			maxLoad = load
		}
		if load < minLoad {
			minLoad = load
		}
	}
	return total, maxLoad, minLoad
}

package experiments

import (
	"fmt"

	"gdn"
	"gdn/internal/gns"
	"gdn/internal/ids"
	"gdn/internal/workload"
)

// E7Config tunes the name-service experiment.
type E7Config struct {
	// Names registered (default 300).
	Names int
	// Resolutions replayed (default 3000).
	Resolutions int
	// BatchSizes for the naming-authority sweep (default 1, 10, 50).
	BatchSizes []int
}

// E7NameService measures the two DNS properties the GNS design leans
// on (§5): client-side caching makes resolution cheap because
// name→OID mappings are stable, and batching at the Naming Authority
// keeps zone-update load low.
func E7NameService(cfg E7Config) *Table {
	if cfg.Names <= 0 {
		cfg.Names = 300
	}
	if cfg.Resolutions <= 0 {
		cfg.Resolutions = 3000
	}
	if len(cfg.BatchSizes) == 0 {
		cfg.BatchSizes = []int{1, 10, 50}
	}

	t := &Table{
		ID:      "E7",
		Title:   "GNS resolution caching and update batching (§5)",
		Columns: []string{"measurement", "setting", "value"},
		Notes:   fmt.Sprintf("%d names, Zipf resolution stream of %d", cfg.Names, cfg.Resolutions),
	}

	// --- resolution with and without the resolver cache -------------
	w := newWorld(gdn.DefaultTopology())
	defer w.Close()
	naClient := gns.NewClient(w.Net, "hub", "hub:gns-authority", nil)
	defer naClient.Close()
	names := make([]string, cfg.Names)
	for i := range names {
		names[i] = fmt.Sprintf("/apps/pkg%04d", i)
		if _, err := naClient.Add(names[i], ids.Derive(names[i])); err != nil {
			panic(err)
		}
	}

	for _, cached := range []bool{true, false} {
		res := w.DNSResolver("na-ny-cu")
		res.CacheEnabled = cached
		svc := gns.NewNameService(res, w.Zone())
		zipf := workload.NewZipf(cfg.Names, 0.9, 7)
		var total int64
		for i := 0; i < cfg.Resolutions; i++ {
			_, cost, err := svc.Resolve(names[zipf.Next()])
			if err != nil {
				panic(err)
			}
			total += int64(cost)
		}
		label := "cache on"
		if !cached {
			label = "cache off"
		}
		t.AddRow("mean resolution ms", label,
			fmt.Sprintf("%.3f", float64(total)/float64(cfg.Resolutions)/1e6))
		if cached {
			hits := res.CacheHits()
			t.AddRow("cache hit rate", label,
				fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(cfg.Resolutions)))
		} else {
			t.AddRow("messages sent", label, fmt.Sprint(res.QueriesSent()))
		}
	}

	// --- naming-authority batching -----------------------------------
	for _, batch := range cfg.BatchSizes {
		flushes, updatesSeen := runE7Batch(batch, 100)
		t.AddRow("update msgs per 100 adds", fmt.Sprintf("batch=%d", batch),
			fmt.Sprintf("flushes=%d, per-server updates=%d", flushes, updatesSeen))
	}
	return t
}

// runE7Batch registers n names under a batch size and reports how many
// flushes the authority performed and how many update messages one
// name server processed.
func runE7Batch(batchSize, n int) (flushes, serverUpdates int64) {
	top := gdn.DefaultTopology()
	top.GNSBatchSize = batchSize
	w := newWorld(top)
	defer w.Close()

	naClient := gns.NewClient(w.Net, "hub", "hub:gns-authority", nil)
	defer naClient.Close()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("/os/p%04d", i)
		if _, err := naClient.Add(name, ids.Derive(name)); err != nil {
			panic(err)
		}
	}
	if _, err := naClient.Flush(); err != nil {
		panic(err)
	}
	srv, ok := w.DNSServer(w.RegionSites(w.Regions()[0])[0])
	if !ok {
		panic("e7: no zone server")
	}
	return w.Authority().Flushes(), srv.UpdatesHandled()
}

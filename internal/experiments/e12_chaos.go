package experiments

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gdn"
	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/netsim"
	"gdn/internal/obs"
	"gdn/internal/rpc"
	"gdn/internal/testutil"
)

// E12Config tunes the chaos soak.
type E12Config struct {
	// Seeds drives one full pass of every schedule family per seed
	// (default 1, 2, 3). Each (family, seed) pair runs twice and the
	// two runs must replay identically.
	Seeds []int64
	// Families restricts the schedule families (default all three:
	// "loss-reorder", "oneway-partition", "crash-restart").
	Families []string
	// Downloads per fault-injection phase. Default 6.
	Downloads int
	// FileSize is the package payload in bytes. Default 4 MiB — past
	// the stream credit window, so the crash family genuinely lands
	// mid-transfer.
	FileSize int
	// LeaseTTL is the object servers' registration-session TTL.
	// Default 2.5s: small enough that ageout and re-registration are
	// observable in wall-clock seconds, large enough to clear the
	// rpc dial-backoff cooldown (1s) after a heal.
	LeaseTTL time.Duration
}

// e12Families is the default schedule-family sweep, one per failure
// mode the chaos plane models.
var e12Families = []string{"loss-reorder", "oneway-partition", "crash-restart"}

// E12ChaosSoak is the chaos soak: seeded fault schedules against a
// three-region world, each run twice to prove the chaos plane replays
// bit-identically, with the robustness invariants asserted on every
// run:
//
//   - client-visible failures stay inside the error budget (at least
//     half the downloads attempted under injection succeed, and a
//     clean download succeeds promptly once the schedule heals);
//   - no download ever returns corrupt bytes — a transfer either
//     fails visibly or is bit-exact;
//   - after a heal or restart, every replica is re-registered in the
//     location service within one lease TTL;
//   - the world tears down without leaking goroutines;
//   - no RPC handler panics (registry counter delta), and under
//     loss-reorder every sequencing-layer condemnation is accounted for
//     by an injected frame fault — the rpc layer never condemns a
//     connection the chaos plane left alone.
//
// An invariant violation panics with the schedule family and seed, so
// a failing CI run names the exact schedule to replay.
func E12ChaosSoak(cfg E12Config) *Table {
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1, 2, 3}
	}
	if len(cfg.Families) == 0 {
		cfg.Families = e12Families
	}
	if cfg.Downloads <= 0 {
		cfg.Downloads = 6
	}
	if cfg.FileSize <= 0 {
		cfg.FileSize = 4 << 20
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2500 * time.Millisecond
	}

	t := &Table{
		ID:    "E12",
		Title: "chaos soak: seeded fault schedules vs the robustness invariants",
		Columns: []string{
			"schedule", "seed", "digest", "downloads", "ok", "corrupt", "re-reg ms", "leaked", "replay",
		},
		Notes: fmt.Sprintf("3 regions, 2 masterslave replicas in eu, %d KiB payload, lease TTL %s, rpc deadline 1s; every schedule is run twice and must replay identically",
			cfg.FileSize/1024, cfg.LeaseTTL),
	}

	for _, family := range cfg.Families {
		for _, seed := range cfg.Seeds {
			first := runE12(cfg, family, seed)
			second := runE12(cfg, family, seed)
			if first.fingerprint() != second.fingerprint() {
				panicE12(family, seed, fmt.Sprintf("replay diverged:\n run 1: %s\n run 2: %s",
					first.fingerprint(), second.fingerprint()))
			}
			reReg := "-"
			if first.reRegMS >= 0 {
				reReg = fmt.Sprintf("%.0f", first.reRegMS)
			}
			t.AddRow(family, fmt.Sprint(seed), first.digest,
				fmt.Sprint(first.attempted), fmt.Sprint(first.ok), fmt.Sprint(first.corrupt),
				reReg, fmt.Sprint(first.leaked), "identical")
		}
	}
	return t
}

// e12Result is one run's outcome. The fingerprint covers only
// quantities the seed discipline promises to replay: the schedule
// digest and fault timeline, plus the invariant counters. Per-download
// success counts are excluded — frame-level fault draws depend on
// connection establishment order (see the netsim package comment), so
// ok may legitimately differ between replays while corruption,
// re-registration, and leaks may not.
type e12Result struct {
	digest    string
	timeline  []string
	attempted int
	ok        int
	corrupt   int
	reRegMS   float64 // milliseconds from heal to full re-registration; -1 when the family has no heal
	leaked    int
}

func (r e12Result) fingerprint() string {
	return fmt.Sprintf("%s|%s|attempted=%d|corrupt=%d|rereg=%t|leaked=%d",
		r.digest, strings.Join(r.timeline, ";"), r.attempted, r.corrupt, r.reRegMS >= 0, r.leaked)
}

func panicE12(family string, seed int64, msg string) {
	panic(fmt.Sprintf("E12 invariant violated (schedule %q, seed %d — rerun with this seed to replay): %s",
		family, seed, msg))
}

// e12Schedule builds the family's chaos program. The heal step's
// nominal offset is late on purpose: the workload phases run at their
// own wall-clock pace and the driver fires the heal explicitly with
// Runner.Finish once the pre-heal assertions are in.
func e12Schedule(family string, seed int64) netsim.Schedule {
	const healAt = 30 * time.Second
	switch family {
	case "loss-reorder":
		return netsim.Schedule{Name: family, Seed: seed, Steps: []netsim.Step{
			{At: 0, Action: netsim.Action{Kind: netsim.ActSetFaults, Class: netsim.WideArea, Faults: netsim.LinkFaults{
				Loss: 0.01, Dup: 0.01, Reorder: 0.05, Jitter: 2 * time.Millisecond,
			}}},
			{At: healAt, Action: netsim.Action{Kind: netsim.ActClearFaults}},
		}}
	case "oneway-partition":
		// Cut eu-2 -> eu-1 only: renewals from the eu-2 object server
		// never reach the region directory node at eu-1, while traffic
		// toward eu-2 still flows — the asymmetric case a symmetric
		// partition model cannot express.
		return netsim.Schedule{Name: family, Seed: seed, Steps: []netsim.Step{
			{At: 0, Action: netsim.Action{Kind: netsim.ActPartitionOneWay, A: "eu-2", B: "eu-1"}},
			{At: healAt, Action: netsim.Action{Kind: netsim.ActHealOneWay, A: "eu-2", B: "eu-1"}},
		}}
	case "crash-restart":
		return netsim.Schedule{Name: family, Seed: seed, Steps: []netsim.Step{
			{At: 0, Action: netsim.Action{Kind: netsim.ActCrash, A: "eu-2"}},
			{At: healAt, Action: netsim.Action{Kind: netsim.ActRestart, A: "eu-2"}},
		}}
	}
	panic(fmt.Sprintf("e12: unknown schedule family %q", family))
}

// runE12 deploys a fresh three-region world, drives one schedule
// against it, checks the invariants, and tears everything down.
func runE12(cfg E12Config, family string, seed int64) e12Result {
	// The soak polls in wall-clock seconds, so the 30s default RPC
	// deadline would hide every hang. Each Client copies the default
	// into its Timeout field at creation, so lowering the var before the
	// world is built reaches every client without racing in-flight calls.
	savedTimeout := rpc.DefaultTimeout
	rpc.DefaultTimeout = time.Second
	defer func() { rpc.DefaultTimeout = savedTimeout }()

	g0 := runtime.NumGoroutine()
	panics0 := obs.Default.CounterValue("gdn_rpc_server_panics_total")
	seqgap0 := obs.Default.CounterValue(`gdn_rpc_conns_condemned_total{cause="seqgap"}`)

	w := newWorld(gdn.Topology{
		Regions: map[string][]string{
			"eu": {"eu-1", "eu-2"},
			"na": {"na-1", "na-2"},
			"ap": {"ap-1", "ap-2"},
		},
		SharedRegionLeaves: true,
		GOSLeaseTTL:        cfg.LeaseTTL,
	})

	content := bytes.Repeat([]byte("gdn chaos soak "), cfg.FileSize/15+1)[:cfg.FileSize]
	mod, err := w.Moderator("eu-1", "e12-moderator")
	if err != nil {
		panic(err)
	}
	oid, _, err := mod.CreatePackage("/apps/chaos", gdn.Scenario{
		Protocol: gdn.ProtocolMasterSlave,
		Servers:  w.GOSAddrs("eu-1", "eu-2"),
	}, gdn.Package{Files: map[string][]byte{"blob": content}})
	if err != nil {
		panic(fmt.Sprintf("e12: deploy: %v", err))
	}

	h, err := w.HTTPD("na-1", gdn.HTTPDConfig{})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(h)
	url := ts.URL + "/pkg/apps/chaos/-/blob"
	tr := &http.Transport{}
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}

	// The eu region record lives on the directory node at eu-1; a
	// resolver there observes registrations without crossing any of
	// the links the schedules break.
	res, err := w.GLSResolver("eu-1", nil)
	if err != nil {
		panic(err)
	}

	sched := e12Schedule(family, seed)
	run := netsim.NewRunner(w.Net, sched)
	r := e12Result{digest: sched.Digest(), reRegMS: -1}

	switch family {
	case "loss-reorder":
		run.AdvanceTo(0)
		for i := 0; i < cfg.Downloads; i++ {
			ok, corrupt := e12Download(client, url, content)
			r.attempted++
			if ok {
				r.ok++
			}
			if corrupt {
				r.corrupt++
			}
		}
		run.Finish()

	case "oneway-partition":
		run.AdvanceTo(0)
		for i := 0; i < cfg.Downloads; i++ {
			ok, corrupt := e12Download(client, url, content)
			r.attempted++
			if ok {
				r.ok++
			}
			if corrupt {
				r.corrupt++
			}
		}
		// Renewals from eu-2 are dying, so its entry must age out of
		// lookups — that is what makes the later re-registration a
		// real repair rather than a no-op.
		if _, ok := e12PollAddrs(res, oid, 5*cfg.LeaseTTL, func(n int) bool { return n < 2 }); !ok {
			panicE12(family, seed, "partitioned replica never aged out of the location service")
		}
		run.Finish()
		if took, ok := e12PollAddrs(res, oid, cfg.LeaseTTL, func(n int) bool { return n >= 2 }); !ok {
			panicE12(family, seed, fmt.Sprintf("replica not re-registered within one lease TTL (%s) of heal", cfg.LeaseTTL))
		} else {
			r.reRegMS = float64(took) / float64(time.Millisecond)
		}

	case "crash-restart":
		// A fleet of concurrent downloads, all provably mid-stream
		// when the crash lands.
		n := cfg.Downloads
		var started, okC, corruptC atomic.Int64
		firstBytes := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				signaled := false
				signal := func() {
					if !signaled {
						signaled = true
						if started.Add(1) == int64(n) {
							close(firstBytes)
						}
					}
				}
				defer signal()
				resp, err := client.Get(url)
				if err != nil {
					return
				}
				defer resp.Body.Close()
				head := make([]byte, 64<<10)
				if _, err := io.ReadFull(resp.Body, head); err != nil {
					return
				}
				signal()
				rest, err := io.ReadAll(resp.Body)
				if err != nil {
					return
				}
				if !bytes.Equal(append(head, rest...), content) {
					corruptC.Add(1)
					return
				}
				okC.Add(1)
			}()
		}
		<-firstBytes
		run.AdvanceTo(0) // crash eu-2 mid-fleet
		wg.Wait()
		r.attempted += n
		r.ok += int(okC.Load())
		r.corrupt += int(corruptC.Load())
		if _, ok := e12PollAddrs(res, oid, 5*cfg.LeaseTTL, func(n int) bool { return n < 2 }); !ok {
			panicE12(family, seed, "crashed replica never aged out of the location service")
		}
		run.Finish() // restart eu-2
		if took, ok := e12PollAddrs(res, oid, cfg.LeaseTTL, func(n int) bool { return n >= 2 }); !ok {
			panicE12(family, seed, fmt.Sprintf("replica not re-registered within one lease TTL (%s) of restart", cfg.LeaseTTL))
		} else {
			r.reRegMS = float64(took) / float64(time.Millisecond)
		}
	}

	// Error budget under injection, and a clean download once healed.
	if r.corrupt > 0 {
		panicE12(family, seed, fmt.Sprintf("%d downloads returned corrupt bytes", r.corrupt))
	}
	if 2*r.ok < r.attempted {
		panicE12(family, seed, fmt.Sprintf("error budget blown: %d/%d downloads succeeded under injection", r.ok, r.attempted))
	}
	e12PostHeal(client, url, content, family, seed)

	// Registry-counter invariants. Handler panics are recoverable at
	// the rpc layer but always a bug, in any family. Under loss-reorder,
	// the sequencing layer may condemn connections, but only ever as
	// many as the chaos plane actually disturbed: condemnations are
	// bounded by injected frame faults. (The counters are process-global
	// while FaultStats is per-world, hence the before/after deltas.)
	if d := obs.Default.CounterValue("gdn_rpc_server_panics_total") - panics0; d != 0 {
		panicE12(family, seed, fmt.Sprintf("%d RPC handler panics during the run", d))
	}
	if family == "loss-reorder" {
		faults := w.Net.FaultStats()
		injected := faults.Lost + faults.Duplicated + faults.Reordered
		if d := obs.Default.CounterValue(`gdn_rpc_conns_condemned_total{cause="seqgap"}`) - seqgap0; d > injected {
			panicE12(family, seed, fmt.Sprintf(
				"%d seqconn condemnations but only %d injected frame faults — the rpc layer condemned connections chaos left alone", d, injected))
		}
	}

	res.Close()
	ts.Close()
	tr.CloseIdleConnections()
	w.Close()
	r.timeline = run.Timeline()
	r.leaked = testutil.Leaked(g0, 2, 3*time.Second)
	if r.leaked > 0 {
		panicE12(family, seed, fmt.Sprintf("%d goroutines leaked after teardown", r.leaked))
	}
	return r
}

// e12Download fetches the blob once. ok means HTTP 200 with the exact
// deployed bytes; corrupt means a complete 200 body that differs from
// them — the invariant that must never fire. Transport errors,
// truncations, and 5xx are visible failures, charged to the error
// budget instead.
func e12Download(c *http.Client, url string, want []byte) (ok, corrupt bool) {
	resp, err := c.Get(url)
	if err != nil {
		return false, false
	}
	defer resp.Body.Close()
	body, readErr := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || readErr != nil {
		return false, false
	}
	if !bytes.Equal(body, want) {
		return false, true
	}
	return true, false
}

// e12PostHeal requires one clean download shortly after the schedule
// heals. The dial-backoff gate may hold a previously unreachable peer
// out for up to a second, so a short retry window is part of the
// contract rather than a flake shield.
func e12PostHeal(c *http.Client, url string, want []byte, family string, seed int64) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok, corrupt := e12Download(c, url, want)
		if corrupt {
			panicE12(family, seed, "post-heal download returned corrupt bytes")
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			panicE12(family, seed, "no clean download within 5s of heal")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// e12PollAddrs polls the location service until the count of distinct
// registered replica addresses satisfies want, reporting how long it
// took and whether it happened inside the window.
func e12PollAddrs(res *gls.Resolver, oid ids.OID, window time.Duration, want func(int) bool) (time.Duration, bool) {
	start := time.Now()
	deadline := start.Add(window)
	for {
		n := 0
		if addrs, _, err := res.Lookup(oid); err == nil {
			seen := make(map[string]bool, len(addrs))
			for _, ca := range addrs {
				seen[ca.Address] = true
			}
			n = len(seen)
		}
		if want(n) {
			return time.Since(start), true
		}
		if time.Now().After(deadline) {
			return time.Since(start), false
		}
		time.Sleep(50 * time.Millisecond)
	}
}

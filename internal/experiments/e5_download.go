package experiments

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"gdn"
	"gdn/internal/netsim"
	"gdn/internal/workload"
)

// E5Config tunes the end-to-end download experiment.
type E5Config struct {
	// Sizes of the package payload in bytes (default workload.PackageSizes).
	Sizes []int
	// ReplicaCounts to sweep (default 1, 3, 6).
	ReplicaCounts []int
}

// E5Download reproduces the GDN's reason to exist (Fig 3, §4): a user
// downloads a package through the nearest GDN-enabled HTTPD, which
// binds to the package DSO and streams the file. With one central
// replica every download crosses the wide area (the FTP/Web baseline);
// with replicas spread per region, downloads become regional — server
// capacity is traded for wide-area bandwidth exactly as §3.1 frames it.
func E5Download(cfg E5Config) *Table {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = workload.PackageSizes()
	}
	if len(cfg.ReplicaCounts) == 0 {
		cfg.ReplicaCounts = []int{1, 3, 6}
	}

	t := &Table{
		ID:    "E5",
		Title: "end-to-end download via GDN-HTTPD: replicas vs central server (Fig 3, §4)",
		Columns: []string{
			"size KB", "replicas", "mean download ms", "WAN KB/download", "vs central WAN",
		},
		Notes: "one download from each of 6 regions through the region's GDN-HTTPD",
	}

	for _, size := range cfg.Sizes {
		var centralWAN float64
		for _, replicas := range cfg.ReplicaCounts {
			meanMS, wanKB := runE5(size, replicas)
			if replicas == cfg.ReplicaCounts[0] {
				centralWAN = wanKB
			}
			ratio := "1.00"
			if centralWAN > 0 {
				ratio = fmt.Sprintf("%.2f", wanKB/centralWAN)
			}
			t.AddRow(
				fmt.Sprint(size/1024),
				fmt.Sprint(replicas),
				fmt.Sprintf("%.2f", meanMS),
				fmt.Sprintf("%.1f", wanKB),
				ratio,
			)
		}
	}
	return t
}

// runE5 deploys one package on `replicas` servers (first sites of
// distinct regions) and downloads it once from each region's second
// site through a local HTTPD.
func runE5(size, replicas int) (meanMS, wanKBPerDownload float64) {
	w := newWorld(bigTopology())
	defer w.Close()

	regions := w.Regions()
	if replicas > len(regions) {
		replicas = len(regions)
	}
	servers := make([]string, replicas)
	for i := 0; i < replicas; i++ {
		servers[i] = w.RegionSites(regions[i])[0]
	}
	protocol := gdn.ProtocolMasterSlave
	if replicas == 1 {
		protocol = gdn.ProtocolClientServer
	}

	mod, err := w.Moderator(servers[0], "e5-moderator")
	if err != nil {
		panic(err)
	}
	content := make([]byte, size)
	for i := range content {
		content[i] = byte(i)
	}
	if _, _, err := mod.CreatePackage("/apps/big", gdn.Scenario{
		Protocol: protocol,
		Servers:  w.GOSAddrs(servers...),
	}, gdn.Package{Files: map[string][]byte{"pkg.tar": content}}); err != nil {
		panic(fmt.Sprintf("e5: deploy: %v", err))
	}

	w.Net.ResetMeter()
	var totalCost time.Duration
	downloads := 0
	for _, region := range regions {
		client := w.RegionSites(region)[1]
		h, err := w.HTTPD(client, gdn.HTTPDConfig{})
		if err != nil {
			panic(err)
		}
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/pkg/apps/big/-/pkg.tar", nil)
		before := h.Stats().VirtualCost
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK || rec.Body.Len() != size {
			panic(fmt.Sprintf("e5: download at %s: status %d, %d bytes", client, rec.Code, rec.Body.Len()))
		}
		totalCost += h.Stats().VirtualCost - before
		downloads++
	}
	wan := w.Net.Meter().Bytes[netsim.WideArea]
	return float64(totalCost) / float64(downloads) / 1e6,
		float64(wan) / 1024 / float64(downloads)
}

// E5ChunkAblation sweeps the HTTPD's streaming chunk size for a large
// file: small chunks add round trips (latency), huge chunks defeat
// streaming. This is the design-choice ablation DESIGN.md calls out.
func E5ChunkAblation() *Table {
	t := &Table{
		ID:      "E5b",
		Title:   "file-streaming chunk size (design ablation)",
		Columns: []string{"chunk KB", "invocations", "virtual ms"},
		Notes:   "10 MB file fetched chunk-by-chunk from a remote replica",
	}
	const size = 10 << 20
	for _, chunk := range []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		invocations, cost := runE5Chunks(size, chunk)
		t.AddRow(fmt.Sprint(chunk/1024), fmt.Sprint(invocations), ms(cost))
	}
	return t
}

func runE5Chunks(size int, chunk int64) (invocations int, cost time.Duration) {
	w := newWorld(bigTopology())
	defer w.Close()

	mod, err := w.Moderator("eu-1", "e5b-moderator")
	if err != nil {
		panic(err)
	}
	content := make([]byte, size)
	if _, _, err := mod.CreatePackage("/apps/huge", gdn.Scenario{
		Protocol: gdn.ProtocolClientServer,
		Servers:  w.GOSAddrs("eu-1"),
	}, gdn.Package{Files: map[string][]byte{"blob": content}}); err != nil {
		panic(err)
	}

	stub, _, err := w.BindPackage("na-2", "/apps/huge")
	if err != nil {
		panic(err)
	}
	defer stub.Close()
	stub.TakeCost()
	for off := int64(0); off < int64(size); off += chunk {
		b, err := stub.GetFileChunk("blob", off, chunk)
		if err != nil {
			panic(err)
		}
		if len(b) == 0 {
			break
		}
		invocations++
	}
	return invocations, stub.TakeCost()
}

package experiments

import (
	"fmt"
	"time"

	"gdn"
	"gdn/internal/gls"
	"gdn/internal/gos"
	"gdn/internal/netsim"
	"gdn/internal/pkgobj"
	"gdn/internal/repl"
	"gdn/internal/workload"
)

// E4Config tunes the differentiated-replication experiment.
type E4Config struct {
	// Docs in the population (default 60).
	Docs int
	// Events replayed (default 1500).
	Events int
	// Seed for the trace (default 4).
	Seed int64
}

// E4Differentiated reproduces the claim behind §3.1: "if we assign a
// replication scenario to each Web page that reflects that page's
// individual usage and update patterns, we get significant
// improvements ... less wide-area network traffic was generated and
// the response time for the end-user improved" [Pierre et al. 1999].
//
// A departmental-style document population (most documents cold, a few
// hot, a couple hot and frequently updated) is deployed six ways: four
// single global policies, and a differentiated assignment that picks a
// scenario per document class. The replayed trace reports wide-area
// bytes and mean response times.
func E4Differentiated(cfg E4Config) *Table {
	if cfg.Docs <= 0 {
		cfg.Docs = 60
	}
	if cfg.Events <= 0 {
		cfg.Events = 1500
	}
	if cfg.Seed == 0 {
		cfg.Seed = 4
	}

	t := &Table{
		ID:    "E4",
		Title: "differentiated per-object replication vs global policies (§3.1, Pierre et al.)",
		Columns: []string{
			"policy", "replicas", "deploy WAN KB", "replay WAN KB",
			"mean read ms", "mean write ms",
		},
		Notes: fmt.Sprintf("%d docs, %d events, 6 regions; home region eu", cfg.Docs, cfg.Events),
	}

	for _, policy := range []string{"central", "replicate-all", "cache-ttl", "cache-inval", "differentiated"} {
		r := runE4(cfg, policy)
		t.AddRow(policy,
			fmt.Sprint(r.replicas),
			kb(r.deployWAN),
			kb(r.replayWAN),
			ms(r.meanRead),
			ms(r.meanWrite),
		)
	}
	return t
}

type e4Result struct {
	replicas  int
	deployWAN int64
	replayWAN int64
	meanRead  time.Duration
	meanWrite time.Duration
}

// e4Assignment decides the deployment of one document under a policy.
type e4Assignment struct {
	// protocol for the home replica(s): clientserver, masterslave or
	// active.
	protocol string
	// replicateEverywhere places a tail replica in every non-home
	// region (masterslave slave or active peer).
	replicateEverywhere bool
	// cacheMode, when non-empty, places cache replicas in every
	// non-home region with this coherence mode ("ttl" or "invalidate").
	cacheMode string
}

func e4Assign(policy string, class workload.DocClass) e4Assignment {
	switch policy {
	case "central":
		return e4Assignment{protocol: repl.ClientServer}
	case "replicate-all":
		return e4Assignment{protocol: repl.MasterSlave, replicateEverywhere: true}
	case "cache-ttl":
		return e4Assignment{protocol: repl.ClientServer, cacheMode: repl.ModeTTL}
	case "cache-inval":
		return e4Assignment{protocol: repl.ClientServer, cacheMode: repl.ModeInvalidate}
	case "differentiated":
		// The per-class choice the paper's study argues for: cold
		// documents stay central (replicating them wastes resources for
		// nothing), warm static ones get invalidation caches (one fetch
		// per region, ever — they never invalidate), hot static ones are
		// fully replicated, and hot updated ones ship ordered
		// invocations instead of state.
		switch class {
		case workload.ColdStatic:
			return e4Assignment{protocol: repl.ClientServer}
		case workload.WarmStatic:
			return e4Assignment{protocol: repl.ClientServer, cacheMode: repl.ModeInvalidate}
		case workload.HotStatic:
			return e4Assignment{protocol: repl.MasterSlave, replicateEverywhere: true}
		default: // HotUpdated
			return e4Assignment{protocol: repl.Active, replicateEverywhere: true}
		}
	default:
		panic("experiments: unknown E4 policy " + policy)
	}
}

func runE4(cfg E4Config, policy string) e4Result {
	w := newWorld(bigTopology())
	defer w.Close()

	const home = "eu-1"
	var clientSites []string
	for _, region := range w.Regions() {
		clientSites = append(clientSites, w.RegionSites(region)[1])
	}
	trace := workload.DepartmentalTrace(workload.TraceConfig{
		Docs: cfg.Docs, Events: cfg.Events,
		Sites: clientSites, Seed: cfg.Seed,
	})

	mod, err := w.Moderator(home, "e4-moderator")
	if err != nil {
		panic(err)
	}

	// Deploy every document under the policy.
	var result e4Result
	docOIDs := make([]gdn.OID, len(trace.Docs))
	for i, doc := range trace.Docs {
		a := e4Assign(policy, doc.Class)
		scenario := gdn.Scenario{Protocol: a.protocol, Servers: w.GOSAddrs(home)}
		if a.replicateEverywhere {
			for _, region := range w.Regions() {
				site := w.RegionSites(region)[0]
				if site != home {
					scenario.Servers = append(scenario.Servers, site+":gos-cmd")
				}
			}
		}
		// Four equal parts per document: an update rewrites one part, so
		// state-shipping protocols move 4x what invocation-shipping ones
		// do — the trade-off the differentiated assignment exploits.
		files := make(map[string][]byte, 4)
		for part := 0; part < 4; part++ {
			content := make([]byte, doc.Size/4)
			for j := range content {
				content[j] = byte(doc.ID + part)
			}
			files[fmt.Sprintf("part%d", part)] = content
		}
		oid, _, err := mod.CreatePackage(doc.Name, scenario, gdn.Package{Files: files})
		if err != nil {
			panic(fmt.Sprintf("e4: deploy %s: %v", doc.Name, err))
		}
		docOIDs[i] = oid
		result.replicas += len(scenario.Servers)

		if a.cacheMode != "" {
			result.replicas += deployE4Caches(w, oid, home, a.cacheMode)
		}
	}
	result.deployWAN = w.Net.Meter().Bytes[netsim.WideArea]

	// Replay. Readers bind lazily per (site, doc) like a GDN HTTPD
	// would; the moderator writes from the home site.
	w.Net.ResetMeter()
	type key struct {
		site string
		doc  int
	}
	readers := make(map[key]*gdn.Stub)
	var writeStubs = make(map[int]*gdn.Stub)
	var readCost, writeCost time.Duration
	var reads, writes int

	modRT, err := w.UserRuntime(home)
	if err != nil {
		panic(err)
	}
	for _, ev := range trace.Events {
		w.Clock.Advance(time.Second)
		doc := trace.Docs[ev.Doc]
		if ev.Write {
			stub, ok := writeStubs[ev.Doc]
			if !ok {
				lr, _, err := modRT.Bind(docOIDs[ev.Doc])
				if err != nil {
					panic(err)
				}
				stub = pkgobj.NewStub(lr)
				writeStubs[ev.Doc] = stub
			}
			content := make([]byte, doc.Size/4)
			content[0] = byte(writes)
			if err := stub.AddFile("part0", content); err != nil {
				panic(fmt.Sprintf("e4: write %s: %v", doc.Name, err))
			}
			writeCost += stub.TakeCost()
			writes++
			continue
		}
		k := key{ev.Site, ev.Doc}
		stub, ok := readers[k]
		if !ok {
			s, bindCost, err := w.BindPackage(ev.Site, doc.Name)
			if err != nil {
				panic(fmt.Sprintf("e4: bind %s at %s: %v", doc.Name, ev.Site, err))
			}
			stub = s
			readers[k] = stub
			readCost += bindCost
		}
		for part := 0; part < 4; part++ {
			if _, err := stub.GetFileContents(fmt.Sprintf("part%d", part)); err != nil {
				panic(fmt.Sprintf("e4: read %s at %s: %v", doc.Name, ev.Site, err))
			}
		}
		readCost += stub.TakeCost()
		reads++
	}

	result.replayWAN = w.Net.Meter().Bytes[netsim.WideArea]
	if reads > 0 {
		result.meanRead = readCost / time.Duration(reads)
	}
	if writes > 0 {
		result.meanWrite = writeCost / time.Duration(writes)
	}
	for _, s := range readers {
		s.Close()
	}
	for _, s := range writeStubs {
		s.Close()
	}
	return result
}

// deployE4Caches places one cache replica per non-home region,
// registered in the location service so regional clients find it.
func deployE4Caches(w *gdn.World, oid gdn.OID, home, mode string) int {
	serverCA := gls.ContactAddress{
		Protocol: repl.ClientServer,
		Address:  home + ":gos-obj",
		Impl:     pkgobj.Impl,
		Role:     repl.RoleServer,
	}
	placed := 0
	for _, region := range w.Regions() {
		site := w.RegionSites(region)[0]
		if site == home {
			continue
		}
		cl := gos.NewClient(w.Net, site, site+":gos-cmd", nil)
		_, _, _, err := cl.CreateReplica(gos.CreateRequest{
			OID:      oid,
			Impl:     pkgobj.Impl,
			Protocol: repl.Cache,
			Role:     repl.RoleCache,
			Params:   map[string]string{"mode": mode, "ttl": "120s"},
			Peers:    []gls.ContactAddress{serverCA},
		})
		cl.Close()
		if err != nil {
			panic(fmt.Sprintf("e4: cache at %s: %v", site, err))
		}
		placed++
	}
	return placed
}

package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// parse pulls a numeric cell out of a table row identified by its
// first-column prefix.
func cell(t *testing.T, tab *Table, rowPrefix string, col int) float64 {
	t.Helper()
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], rowPrefix) {
			v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(row[col], "x"), "%"), 64)
			if err != nil {
				t.Fatalf("row %q col %d: %v", rowPrefix, col, err)
			}
			return v
		}
	}
	t.Fatalf("no row with prefix %q in %s", rowPrefix, tab.ID)
	return 0
}

func findRow(t *testing.T, tab *Table, match func([]string) bool) []string {
	t.Helper()
	for _, row := range tab.Rows {
		if match(row) {
			return row
		}
	}
	t.Fatalf("no matching row in %s", tab.ID)
	return nil
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestE1OverheadShape(t *testing.T) {
	tab := E1Overhead(E1Config{Iterations: 2000})
	direct := cell(t, tab, "direct", 1)
	stacked := cell(t, tab, "through LR", 1)
	if direct <= 0 || stacked <= 0 {
		t.Fatalf("non-positive timings: %v %v", direct, stacked)
	}
	// The stack costs something, but must stay within an order of
	// magnitude — the paper's design bet.
	if stacked < direct {
		t.Logf("stack cheaper than direct (%v < %v): plausible noise, not failing", stacked, direct)
	}
	if stacked > direct*20 {
		t.Fatalf("subobject stack overhead out of control: %v vs %v", stacked, direct)
	}
}

func TestE2DistanceMonotonicity(t *testing.T) {
	tab := E2LookupDistance()
	same := cell(t, tab, "eu-a", 3)
	region := cell(t, tab, "eu-b", 3)
	far := cell(t, tab, "us-a", 3)
	if !(same < region && region < far) {
		t.Fatalf("lookup cost must grow with distance: %v %v %v", same, region, far)
	}
}

func TestE2MobileAblationFavorsIntermediate(t *testing.T) {
	tab := E2MobileAblation()
	leafMove := cell(t, tab, "leaf nodes", 2)
	midMove := cell(t, tab, "intermediate", 2)
	if midMove >= leafMove {
		t.Fatalf("intermediate placement must make moves cheaper: %v vs %v", midMove, leafMove)
	}
}

func TestE3PartitioningSpreadsLoad(t *testing.T) {
	tab := E3RootPartitioning(E3Config{Objects: 64, LookupsPerObject: 1, SubnodeCounts: []int{1, 4}})
	max1 := cell(t, tab, "1", 2)
	row4 := findRow(t, tab, func(r []string) bool { return r[0] == "4" })
	max4 := parseF(t, row4[2])
	if max4 >= max1 {
		t.Fatalf("partitioning must reduce the hottest subnode: %v vs %v", max4, max1)
	}
	// With 4 subnodes the hottest should carry well under half the
	// unpartitioned load.
	if max4 > max1*0.6 {
		t.Fatalf("partitioning too weak: %v vs %v", max4, max1)
	}
}

func TestE4DifferentiatedWins(t *testing.T) {
	tab := E4Differentiated(E4Config{Docs: 30, Events: 400})
	get := func(policy string, col int) float64 {
		row := findRow(t, tab, func(r []string) bool { return r[0] == policy })
		return parseF(t, row[col])
	}

	centralWAN := get("central", 3)
	replAllWAN := get("replicate-all", 3)
	diffWAN := get("differentiated", 3)
	centralRead := get("central", 4)
	diffRead := get("differentiated", 4)

	// The paper's claim: differentiated beats the central baseline on
	// both WAN traffic and response time, and does not lose to
	// replicate-everywhere on WAN while using fewer replicas.
	if diffWAN >= centralWAN {
		t.Fatalf("differentiated WAN %v must beat central %v", diffWAN, centralWAN)
	}
	if diffRead >= centralRead {
		t.Fatalf("differentiated read %v must beat central %v", diffRead, centralRead)
	}
	diffReplicas := get("differentiated", 1)
	replAllReplicas := get("replicate-all", 1)
	if diffReplicas >= replAllReplicas {
		t.Fatalf("differentiated must use fewer replicas: %v vs %v", diffReplicas, replAllReplicas)
	}
	_ = replAllWAN // reported; direction depends on write mix
}

func TestE5ReplicationCutsWAN(t *testing.T) {
	tab := E5Download(E5Config{Sizes: []int{256 << 10}, ReplicaCounts: []int{1, 6}})
	row1 := findRow(t, tab, func(r []string) bool { return r[1] == "1" })
	row6 := findRow(t, tab, func(r []string) bool { return r[1] == "6" })
	wan1 := parseF(t, row1[3])
	wan6 := parseF(t, row6[3])
	if wan6 >= wan1/2 {
		t.Fatalf("6 replicas must cut WAN bytes sharply: %v vs %v", wan6, wan1)
	}
	lat1 := parseF(t, row1[2])
	lat6 := parseF(t, row6[2])
	if lat6 >= lat1 {
		t.Fatalf("regional replicas must cut download latency: %v vs %v", lat6, lat1)
	}
}

func TestE5ChunkTradeoff(t *testing.T) {
	tab := E5ChunkAblation()
	small := findRow(t, tab, func(r []string) bool { return r[0] == "64" })
	big := findRow(t, tab, func(r []string) bool { return r[0] == "4096" })
	if parseF(t, small[1]) <= parseF(t, big[1]) {
		t.Fatal("smaller chunks must need more invocations")
	}
	if parseF(t, small[2]) <= parseF(t, big[2]) {
		t.Fatal("smaller chunks must cost more virtual latency")
	}
}

func TestE6ChannelModesDoWhatTheyClaim(t *testing.T) {
	// Timing orderings are asserted nowhere: wall-clock comparisons of
	// microsecond work are unreliable under parallel test load (the
	// experiment and benchmarks report them under controlled runs).
	// What the test pins down is the mechanical difference the modes
	// claim: integrity-only channels ship the plaintext (plus a MAC),
	// encrypted channels do not ship the plaintext at all — the
	// "superfluous confidentiality" the paper pays for (§6.3).
	tab := E6ChannelCost(E6Config{Handshakes: 3, Transfers: 10, Payloads: []int{1 << 10}})
	modes := map[string]bool{}
	for _, row := range tab.Rows {
		if parseF(t, row[2]) <= 0 {
			t.Fatalf("non-positive measurement: %v", row)
		}
		modes[row[1]] = true
	}
	for _, want := range []string{"plain", "integrity", "integrity+encryption", "one-way auth", "two-way auth"} {
		if !modes[want] {
			t.Fatalf("missing mode %q in table", want)
		}
	}
}

func TestE7CachingAndBatching(t *testing.T) {
	tab := E7NameService(E7Config{Names: 40, Resolutions: 400, BatchSizes: []int{1, 50}})
	var cacheOn, cacheOff float64
	for _, row := range tab.Rows {
		if row[0] == "mean resolution ms" {
			v := parseF(t, row[2])
			if row[1] == "cache on" {
				cacheOn = v
			} else {
				cacheOff = v
			}
		}
	}
	if cacheOn >= cacheOff {
		t.Fatalf("cache must cut mean resolution cost: %v vs %v", cacheOn, cacheOff)
	}

	var flushes1, flushes50 string
	for _, row := range tab.Rows {
		if row[0] == "update msgs per 100 adds" {
			switch row[1] {
			case "batch=1":
				flushes1 = row[2]
			case "batch=50":
				flushes50 = row[2]
			}
		}
	}
	if !strings.Contains(flushes1, "flushes=100") {
		t.Fatalf("batch=1 row = %q", flushes1)
	}
	// Each add stages ~3 records (OID, package marker, directory
	// entry), so 100 adds at batch=50 flush a handful of times —
	// versus 100 unbatched update messages.
	if !strings.Contains(flushes50, "flushes=5") && !strings.Contains(flushes50, "flushes=6") &&
		!strings.Contains(flushes50, "flushes=7") {
		t.Fatalf("batch=50 row = %q, want a handful of flushes", flushes50)
	}
}

func TestE8CrossoverShape(t *testing.T) {
	tab := E8Protocols(E8Config{
		Events:         120,
		WriteFractions: []float64{0, 0.5},
		ReplicaCounts:  []int{1, 6},
		DocSize:        32 << 10,
	})
	get := func(protocol, replicas, writePct string) []string {
		return findRow(t, tab, func(r []string) bool {
			return r[0] == protocol && r[1] == replicas && r[2] == writePct
		})
	}

	// Read-only: replicated master/slave must beat the central server
	// on both latency and WAN bytes.
	csRead := get("clientserver", "1", "0")
	msRead := get("masterslave", "6", "0")
	if parseF(t, msRead[3]) >= parseF(t, csRead[3]) {
		t.Fatalf("replicated reads must be faster: %v vs %v", msRead[3], csRead[3])
	}
	if parseF(t, msRead[4]) >= parseF(t, csRead[4]) {
		t.Fatalf("replicated reads must save WAN: %v vs %v", msRead[4], csRead[4])
	}

	// Write-heavy: replication gets more expensive per op in WAN bytes
	// than it was read-only (the crossover's other side), and active's
	// invocation shipping undercuts master/slave's state shipping.
	msWrite := get("masterslave", "6", "50")
	if parseF(t, msWrite[4]) <= parseF(t, msRead[4]) {
		t.Fatalf("writes must raise master/slave WAN cost: %v vs %v", msWrite[4], msRead[4])
	}
	actWrite := get("active", "6", "50")
	if parseF(t, actWrite[4]) >= parseF(t, msWrite[4]) {
		t.Fatalf("active (invocation shipping) must undercut master/slave (state shipping) on writes: %v vs %v",
			actWrite[4], msWrite[4])
	}
}

func TestE9RecoveryVerifies(t *testing.T) {
	tab := E9Recovery(E9Config{Sizes: []int{64 << 10}})
	row := tab.Rows[0]
	if row[4] != "yes" {
		t.Fatalf("recovery verification failed: %v", row)
	}
	if parseF(t, row[2]) <= 0 {
		t.Fatal("checkpoint must occupy disk")
	}
}

func TestE10AllAttacksRejected(t *testing.T) {
	tab := E10Admission()
	for _, row := range tab.Rows {
		if strings.Contains(row[1], "ACCEPTED") {
			t.Fatalf("attack not rejected: %v", row)
		}
	}
}

func TestE11FleetSurvivesReplicaKill(t *testing.T) {
	tab := E11Failover(E11Config{Replicas: 2, Fleet: 4})
	for _, row := range tab.Rows {
		if row[2] != row[1] {
			t.Fatalf("phase %q completed %s of %s downloads", row[0], row[2], row[1])
		}
		if row[3] != "0" {
			t.Fatalf("phase %q served %s HTTP 5xx", row[0], row[3])
		}
		if row[4] != row[1] {
			t.Fatalf("phase %q: %s of %s downloads bit-exact", row[0], row[4], row[1])
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "demo",
		Columns: []string{"a", "b"},
		Notes:   "n",
	}
	tab.AddRow("x", "1")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"EX", "demo", "a", "x", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render misses %q:\n%s", want, out)
		}
	}
}

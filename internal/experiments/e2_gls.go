package experiments

import (
	"fmt"

	"gdn/internal/gls"
	"gdn/internal/ids"
	"gdn/internal/netsim"
)

// e2World builds the three-level location-service world used by the
// GLS experiments: a root, two regions, two leaf domains per region.
func e2World() (*netsim.Network, *gls.Tree) {
	net := netsim.New(nil)
	net.AddSite("hub", "hub", "core")
	net.AddSite("eu-a", "eu-a", "eu")
	net.AddSite("eu-b", "eu-b", "eu")
	net.AddSite("us-a", "us-a", "us")
	net.AddSite("us-b", "us-b", "us")

	tree, err := gls.Deploy(net, gls.DomainSpec{
		Name: "root", Sites: []string{"hub"},
		Children: []gls.DomainSpec{
			{Name: "eu", Sites: []string{"eu-a"}, Children: []gls.DomainSpec{
				gls.Leaf("eu/a", "eu-a"),
				gls.Leaf("eu/b", "eu-b"),
			}},
			{Name: "us", Sites: []string{"us-a"}, Children: []gls.DomainSpec{
				gls.Leaf("us/a", "us-a"),
				gls.Leaf("us/b", "us-b"),
			}},
		},
	})
	if err != nil {
		panic(err)
	}
	return net, tree
}

// E2LookupDistance reproduces the paper's central GLS property: "the
// cost of a look up increases proportional to the distance between
// client and nearest representative" (§3.5). One object is registered
// in leaf eu/a; clients at increasing distances look it up.
func E2LookupDistance() *Table {
	_, tree := e2World()
	defer tree.Close()

	owner, err := tree.Resolver("eu-a", "eu/a")
	if err != nil {
		panic(err)
	}
	defer owner.Close()
	oid, _, err := owner.Insert(ids.Nil, gls.ContactAddress{
		Protocol: "clientserver", Address: "eu-a:gos-obj", Impl: "package/1", Role: "server",
	})
	if err != nil {
		panic(err)
	}

	t := &Table{
		ID:      "E2",
		Title:   "GLS lookup cost vs client-replica distance (Fig 2, §3.5)",
		Columns: []string{"client", "distance", "hops", "virtual ms"},
		Notes:   "one replica registered in leaf eu/a; lookups climb until an entry is found, then descend",
	}

	cases := []struct {
		site, leaf, distance, hops string
	}{
		{"eu-a", "eu/a", "same leaf", "leaf"},
		{"eu-b", "eu/b", "same region", "leaf→eu→eu/a"},
		{"us-a", "us/a", "other region", "leaf→us→root→eu→eu/a"},
	}
	for _, c := range cases {
		res, err := tree.Resolver(c.site, c.leaf)
		if err != nil {
			panic(err)
		}
		_, cost, err := res.Lookup(oid)
		res.Close()
		if err != nil {
			panic(err)
		}
		t.AddRow(c.site, c.distance, c.hops, ms(cost))
	}
	return t
}

// E2MobileAblation reproduces the §3.5 remark that "storing the
// addresses at intermediate nodes may, in the case of highly mobile
// objects, lead to considerably more efficient look-up operations": a
// mobile object relocates between the two European leaves repeatedly;
// we compare the per-move update cost and post-move lookup cost when
// its address is stored in the leaves versus at the "eu" node.
func E2MobileAblation() *Table {
	_, tree := e2World()
	defer tree.Close()

	euRef, _ := tree.Ref("eu")
	resA, err := tree.Resolver("eu-a", "eu/a")
	if err != nil {
		panic(err)
	}
	defer resA.Close()
	resB, err := tree.Resolver("eu-b", "eu/b")
	if err != nil {
		panic(err)
	}
	defer resB.Close()

	ca := func(site string) gls.ContactAddress {
		return gls.ContactAddress{Protocol: "clientserver", Address: site + ":gos-obj", Impl: "package/1", Role: "server"}
	}

	const moves = 8
	t := &Table{
		ID:      "E2b",
		Title:   "mobile object: leaf storage vs intermediate-node storage (§3.5)",
		Columns: []string{"placement", "moves", "total move ms", "lookup-after-move ms"},
		Notes:   "object relocates between eu/a and eu/b; intermediate placement keeps updates off the pointer chain",
	}

	// Leaf placement: a move inserts the new address first, then
	// deletes the old one, so the shared part of the pointer chain
	// never tears down — but the two leaf nodes and the region node
	// still see pointer churn.
	leafOID := ids.Derive("mobile-leaf")
	var moveCost, lookupCost int64
	if _, _, err := resA.Insert(leafOID, ca("eu-a")); err != nil {
		panic(err)
	}
	at := "a"
	for i := 0; i < moves; i++ {
		var c1, c2 int64
		if at == "a" {
			_, d1, err := resB.Insert(leafOID, ca("eu-b"))
			if err != nil {
				panic(err)
			}
			d2, err := resA.Delete(leafOID, "eu-a:gos-obj")
			if err != nil {
				panic(err)
			}
			c1, c2, at = int64(d1), int64(d2), "b"
		} else {
			_, d1, err := resA.Insert(leafOID, ca("eu-a"))
			if err != nil {
				panic(err)
			}
			d2, err := resB.Delete(leafOID, "eu-b:gos-obj")
			if err != nil {
				panic(err)
			}
			c1, c2, at = int64(d1), int64(d2), "a"
		}
		moveCost += c1 + c2
		_, lc, err := resA.Lookup(leafOID)
		if err != nil {
			panic(err)
		}
		lookupCost += int64(lc)
	}
	t.AddRow("leaf nodes", fmt.Sprint(moves),
		fmt.Sprintf("%.2f", float64(moveCost)/1e6),
		fmt.Sprintf("%.2f", float64(lookupCost)/float64(moves)/1e6))

	// Intermediate placement: the address lives at "eu"; a move is an
	// insert and a delete at the same node with no pointer churn at all.
	midOID := ids.Derive("mobile-mid")
	moveCost, lookupCost = 0, 0
	if _, _, err := resA.InsertAt(euRef, midOID, ca("eu-a")); err != nil {
		panic(err)
	}
	at = "a"
	for i := 0; i < moves; i++ {
		var c1, c2 int64
		if at == "a" {
			_, d1, err := resB.InsertAt(euRef, midOID, ca("eu-b"))
			if err != nil {
				panic(err)
			}
			d2, err := resA.DeleteAt(euRef, midOID, "eu-a:gos-obj")
			if err != nil {
				panic(err)
			}
			c1, c2, at = int64(d1), int64(d2), "b"
		} else {
			_, d1, err := resA.InsertAt(euRef, midOID, ca("eu-a"))
			if err != nil {
				panic(err)
			}
			d2, err := resB.DeleteAt(euRef, midOID, "eu-b:gos-obj")
			if err != nil {
				panic(err)
			}
			c1, c2, at = int64(d1), int64(d2), "a"
		}
		moveCost += c1 + c2
		_, lc, err := resA.Lookup(midOID)
		if err != nil {
			panic(err)
		}
		lookupCost += int64(lc)
	}
	t.AddRow("intermediate (eu) node", fmt.Sprint(moves),
		fmt.Sprintf("%.2f", float64(moveCost)/1e6),
		fmt.Sprintf("%.2f", float64(lookupCost)/float64(moves)/1e6))

	return t
}

// Package experiments implements the drivers that regenerate every
// quantitative claim of the paper, one experiment per claim (the full
// index lives in DESIGN.md §4 and the results in EXPERIMENTS.md):
//
//	E1  subobject-composition overhead (Fig 1b, §3.3)
//	E2  GLS lookup cost vs distance + mobile-object ablation (Fig 2, §3.5)
//	E3  GLS root partitioning into subnodes (§3.5)
//	E4  differentiated per-object replication vs global policies (§3.1)
//	E5  end-to-end GDN download vs central server (Fig 3, §4)
//	E6  security channel cost: the price of superfluous encryption (§6.3)
//	E7  GNS resolution caching and update batching (§5)
//	E8  the two shipped protocols under read/write mixes (§7)
//	E9  object-server checkpoint/recovery (§4)
//	E10 security admission: every unauthorized path is closed (§6.1)
//	E11 replica failover: kill a replica under a fleet of downloads
//	E12 chaos soak: seeded fault schedules vs the robustness invariants
//
// Each driver returns a Table whose rows are printed by
// cmd/gdn-experiments; the benchmarks in bench_test.go wrap the same
// drivers. Experiments run on the simulated WAN, so "latency" columns
// are virtual network cost (the shape of a real deployment) while
// "ns/op" columns are real CPU time.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"gdn"
)

// Table is one experiment's result, rendered like the tables in the
// paper's evaluation style.
type Table struct {
	// ID is the experiment identifier ("E2").
	ID string
	// Title summarizes what is measured.
	Title string
	// Columns and Rows are the table body.
	Columns []string
	Rows    [][]string
	// Notes records caveats and the paper anchor.
	Notes string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render prints the table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Notes)
	}
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// ms formats a virtual duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// kb formats bytes in KiB.
func kb(n int64) string {
	return fmt.Sprintf("%.1f", float64(n)/1024)
}

// newWorld builds a world for an experiment, failing hard: experiment
// configuration errors are programming errors.
func newWorld(top gdn.Topology) *gdn.World {
	w, err := gdn.NewWorld(top)
	if err != nil {
		panic(fmt.Sprintf("experiments: build world: %v", err))
	}
	return w
}

// bigTopology is a six-region world (two sites per region) used by the
// workload experiments.
func bigTopology() gdn.Topology {
	return gdn.Topology{
		Regions: map[string][]string{
			"eu": {"eu-1", "eu-2"},
			"na": {"na-1", "na-2"},
			"sa": {"sa-1", "sa-2"},
			"ap": {"ap-1", "ap-2"},
			"af": {"af-1", "af-2"},
			"oc": {"oc-1", "oc-2"},
		},
	}
}

// All runs every experiment with its default configuration.
func All() []*Table {
	return []*Table{
		E1Overhead(E1Config{}),
		E2LookupDistance(),
		E2MobileAblation(),
		E3RootPartitioning(E3Config{}),
		E3OneWayPartition(),
		E4Differentiated(E4Config{}),
		E5Download(E5Config{}),
		E5ChunkAblation(),
		E6ChannelCost(E6Config{}),
		E7NameService(E7Config{}),
		E8Protocols(E8Config{}),
		E9Recovery(E9Config{}),
		E10Admission(),
		E11Failover(E11Config{}),
		// One seed here: the full seed sweep is the chaos-smoke CI
		// job's business, not every All() caller's.
		E12ChaosSoak(E12Config{Seeds: []int64{1}}),
	}
}

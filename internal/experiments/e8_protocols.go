package experiments

import (
	"fmt"
	"time"

	"gdn"
	"gdn/internal/netsim"
	"gdn/internal/workload"
)

// E8Config tunes the protocol-comparison experiment.
type E8Config struct {
	// Events per cell (default 400).
	Events int
	// WriteFractions to sweep (default 0, 0.05, 0.2, 0.5).
	WriteFractions []float64
	// ReplicaCounts to sweep (default 1, 3, 6).
	ReplicaCounts []int
	// DocSize is the package payload (default 64 KiB in 4 parts).
	DocSize int
}

// E8Protocols compares the replication protocols the paper ships —
// client/server and master/slave (§7) — plus active replication, under
// varying read/write mixes and replica counts. The crossover the table
// shows is the paper's core trade-off: replication wins on read-heavy
// wide-area workloads and costs on write-heavy ones, with the
// state-shipping master/slave paying more per write than the
// invocation-shipping active protocol.
func E8Protocols(cfg E8Config) *Table {
	if cfg.Events <= 0 {
		cfg.Events = 400
	}
	if len(cfg.WriteFractions) == 0 {
		cfg.WriteFractions = []float64{0, 0.05, 0.2, 0.5}
	}
	if len(cfg.ReplicaCounts) == 0 {
		cfg.ReplicaCounts = []int{1, 3, 6}
	}
	if cfg.DocSize <= 0 {
		cfg.DocSize = 64 << 10
	}

	t := &Table{
		ID:    "E8",
		Title: "replication protocols under read/write mixes (§7)",
		Columns: []string{
			"protocol", "replicas", "write %", "mean op ms", "WAN KB/op",
		},
		Notes: fmt.Sprintf("%d ops per cell from clients in 6 regions, %d KB package", cfg.Events, cfg.DocSize/1024),
	}

	for _, protocol := range []string{gdn.ProtocolClientServer, gdn.ProtocolMasterSlave, gdn.ProtocolActive} {
		for _, replicas := range cfg.ReplicaCounts {
			if protocol == gdn.ProtocolClientServer && replicas != 1 {
				continue // single-replica protocol by definition
			}
			for _, wf := range cfg.WriteFractions {
				meanMS, wanKB := runE8(cfg, protocol, replicas, wf)
				t.AddRow(protocol, fmt.Sprint(replicas),
					fmt.Sprintf("%.0f", wf*100),
					fmt.Sprintf("%.2f", meanMS),
					fmt.Sprintf("%.1f", wanKB),
				)
			}
		}
	}
	return t
}

func runE8(cfg E8Config, protocol string, replicas int, writeFraction float64) (meanMS, wanKBPerOp float64) {
	w := newWorld(bigTopology())
	defer w.Close()

	regions := w.Regions()
	if replicas > len(regions) {
		replicas = len(regions)
	}
	servers := make([]string, replicas)
	for i := 0; i < replicas; i++ {
		servers[i] = w.RegionSites(regions[i])[0]
	}

	mod, err := w.Moderator(servers[0], "e8-moderator")
	if err != nil {
		panic(err)
	}
	files := make(map[string][]byte, 4)
	for part := 0; part < 4; part++ {
		files[fmt.Sprintf("part%d", part)] = make([]byte, cfg.DocSize/4)
	}
	if _, _, err := mod.CreatePackage("/apps/bench", gdn.Scenario{
		Protocol: protocol,
		Servers:  w.GOSAddrs(servers...),
	}, gdn.Package{Files: files}); err != nil {
		panic(fmt.Sprintf("e8: deploy %s/%d: %v", protocol, replicas, err))
	}

	var clientSites []string
	for _, region := range regions {
		clientSites = append(clientSites, w.RegionSites(region)[1])
	}
	events := workload.ReadWriteMix(cfg.Events, writeFraction, clientSites, 8)

	// One bound stub per client site; writers use the moderator's
	// runtime so secured worlds would authorize them (this world is
	// open, but the path is identical).
	stubs := make(map[string]*gdn.Stub)
	for _, site := range clientSites {
		stub, _, err := w.BindPackage(site, "/apps/bench")
		if err != nil {
			panic(err)
		}
		defer stub.Close()
		stub.TakeCost()
		stubs[site] = stub
	}

	w.Net.ResetMeter()
	var total time.Duration
	part := make([]byte, cfg.DocSize/4)
	for i, ev := range events {
		stub := stubs[ev.Site]
		if ev.Write {
			part[0] = byte(i)
			if err := stub.AddFile("part0", part); err != nil {
				panic(fmt.Sprintf("e8: write: %v", err))
			}
		} else {
			if _, err := stub.GetFileContents(fmt.Sprintf("part%d", i%4)); err != nil {
				panic(fmt.Sprintf("e8: read: %v", err))
			}
		}
		total += stub.TakeCost()
	}
	wan := w.Net.Meter().Bytes[netsim.WideArea]
	n := float64(len(events))
	return float64(total) / n / 1e6, float64(wan) / 1024 / n
}

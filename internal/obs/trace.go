package obs

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// SpanContext identifies one span within one trace: 16 bytes on the
// wire (trace ID then span ID, both uint64). The zero value means
// "untraced" and every instrumentation site treats it as a no-op, so
// requests that never started a trace pay nothing — no extra wire
// bytes, no ring writes.
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context belongs to a live trace.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

// Span is one timed operation within a trace. End records it into
// the tracer's ring; a nil *Span is a no-op, so call sites need no
// traced/untraced branches.
type Span struct {
	tracer *Tracer
	sc     SpanContext
	parent uint64
	name   string
	start  time.Time
	err    string
}

// Context returns the span's context, for propagation to children
// and across process hops. Safe on a nil span (returns the zero,
// untraced context).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetError annotates the span with a failure before End.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.err = err.Error()
}

// End stamps the span's duration and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tracer.record(SpanRecord{
		Trace:    s.sc.Trace,
		Span:     s.sc.Span,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Err:      s.err,
	})
}

// SpanRecord is one completed span as stored in the ring.
type SpanRecord struct {
	Trace    uint64
	Span     uint64
	Parent   uint64 // 0 for root spans
	Name     string
	Start    time.Time
	Duration time.Duration
	Err      string
}

// defaultRingSize bounds the recent-span ring: enough for a few
// hundred multi-hop requests, small enough that the ring is a fixed
// ~1 MB no matter how long the daemon runs.
const defaultRingSize = 4096

// Tracer records completed spans into a bounded ring, newest
// overwriting oldest. Recording takes one short mutex — only traced
// requests pay it.
type Tracer struct {
	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool
}

// NewTracer returns a tracer with a ring of n spans (n <= 0 selects
// the default size).
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = defaultRingSize
	}
	return &Tracer{ring: make([]SpanRecord, n)}
}

// DefaultTracer is the process-wide tracer; the daemon debug mux
// serves its recent traces.
var DefaultTracer = NewTracer(0)

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	t.ring[t.next] = r
	t.next++
	if t.next == len(t.ring) {
		t.next, t.full = 0, true
	}
	t.mu.Unlock()
}

// Recent returns the ring's contents, oldest first.
func (t *Tracer) Recent() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]SpanRecord, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// newID returns a non-zero random 64-bit ID.
func newID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// StartTrace begins a new trace rooted at a span with the given name,
// recorded into t when ended.
func (t *Tracer) StartTrace(name string) *Span {
	return &Span{
		tracer: t,
		sc:     SpanContext{Trace: newID(), Span: newID()},
		name:   name,
		start:  time.Now(),
	}
}

// StartSpan begins a child span of parent: a fresh span ID under the
// same trace — the "regenerated span at each hop" of the RPC
// propagation. An invalid parent returns nil (a no-op span), which is
// how untraced requests skip all recording.
func (t *Tracer) StartSpan(parent SpanContext, name string) *Span {
	if !parent.Valid() {
		return nil
	}
	return &Span{
		tracer: t,
		sc:     SpanContext{Trace: parent.Trace, Span: newID()},
		parent: parent.Span,
		name:   name,
		start:  time.Now(),
	}
}

// StartTrace begins a new trace on the default tracer.
func StartTrace(name string) *Span { return DefaultTracer.StartTrace(name) }

// StartSpan begins a child span on the default tracer; nil (no-op)
// when parent is invalid.
func StartSpan(parent SpanContext, name string) *Span { return DefaultTracer.StartSpan(parent, name) }

// TracesJSON renders the default tracer's recent traces.
func TracesJSON(limit int) []byte { return DefaultTracer.TracesJSON(limit) }

// jsonSpan is the exposition shape of one span.
type jsonSpan struct {
	Span    string  `json:"span"`
	Parent  string  `json:"parent,omitempty"`
	Name    string  `json:"name"`
	StartUS int64   `json:"start_us"` // microseconds into the trace
	Ms      float64 `json:"ms"`
	Err     string  `json:"err,omitempty"`
}

// jsonTrace is the exposition shape of one trace.
type jsonTrace struct {
	Trace string     `json:"trace"`
	Start time.Time  `json:"start"`
	Spans []jsonSpan `json:"spans"`
}

// TracesJSON renders the ring's recent traces as JSON, newest trace
// first, at most limit traces (limit <= 0 selects 50). Spans within a
// trace are ordered by start time, so a multi-hop request reads top
// to bottom as its hop chain.
func (t *Tracer) TracesJSON(limit int) []byte {
	if limit <= 0 {
		limit = 50
	}
	recs := t.Recent()
	byTrace := make(map[uint64][]SpanRecord)
	for _, r := range recs {
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	traces := make([]jsonTrace, 0, len(byTrace))
	for id, spans := range byTrace {
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		jt := jsonTrace{Trace: fmt.Sprintf("%016x", id), Start: spans[0].Start}
		for _, s := range spans {
			js := jsonSpan{
				Span:    fmt.Sprintf("%016x", s.Span),
				Name:    s.Name,
				StartUS: s.Start.Sub(jt.Start).Microseconds(),
				Ms:      float64(s.Duration) / float64(time.Millisecond),
				Err:     s.Err,
			}
			if s.Parent != 0 {
				js.Parent = fmt.Sprintf("%016x", s.Parent)
			}
			jt.Spans = append(jt.Spans, js)
		}
		traces = append(traces, jt)
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].Start.After(traces[j].Start) })
	if len(traces) > limit {
		traces = traces[:limit]
	}
	b, err := json.MarshalIndent(struct {
		Traces []jsonTrace `json:"traces"`
	}{traces}, "", "  ")
	if err != nil {
		// The shape above cannot fail to marshal; keep the contract total.
		return []byte(`{"traces":[]}`)
	}
	return b
}

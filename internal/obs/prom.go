package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE pair per
// metric family, then every series of the family. Histograms emit the
// conventional cumulative _bucket series with an le label merged into
// any labels the series name already carries, plus _sum and _count,
// with Seconds histograms scaled from their native nanoseconds.
func WritePrometheus(w io.Writer, r *Registry) error {
	samples := r.Snapshot()

	// Group into families, preserving the sorted-by-name order.
	type fam struct {
		name, help, kind string
		samples          []Sample
	}
	var fams []*fam
	byName := make(map[string]*fam)
	for _, s := range samples {
		fname, _ := family(s.Name)
		f, ok := byName[fname]
		if !ok {
			f = &fam{name: fname, kind: s.Kind, help: helpFor(r, s.Name)}
			byName[fname] = f
			fams = append(fams, f)
		}
		f.samples = append(f.samples, s)
	}

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.samples {
			var err error
			if s.Hist != nil {
				err = writeHistogram(w, s)
			} else {
				_, err = fmt.Fprintf(w, "%s %d\n", s.Name, s.Value)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// helpFor finds the help string registered for a series name.
func helpFor(r *Registry, name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m.help
	}
	return ""
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// withLabel appends one label to a series name that may already carry
// a {..} label suffix.
func withLabel(name, label, value string) string {
	fname, labels := family(name)
	if labels == "" {
		return fmt.Sprintf("%s{%s=%q}", fname, label, value)
	}
	// "{a="b"}" -> "{a="b",le="x"}"
	return fmt.Sprintf("%s,%s=%q}", strings.TrimSuffix(name, "}"), label, value)
}

// formatBound renders a bucket's upper bound in the exposition unit.
func formatBound(bound int64, u Unit) string {
	v := float64(bound) * u.scale()
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeHistogram(w io.Writer, s Sample) error {
	h := s.Hist
	fname, _ := family(s.Name)
	var cum int64
	for i, b := range h.Bounds {
		cum += h.Buckets[i]
		name := withLabel(s.Name, "le", formatBound(b, h.Unit))
		if _, err := fmt.Fprintf(w, "%s %d\n", strings.Replace(name, fname, fname+"_bucket", 1), cum); err != nil {
			return err
		}
	}
	cum += h.Buckets[len(h.Bounds)]
	inf := withLabel(s.Name, "le", "+Inf")
	if _, err := fmt.Fprintf(w, "%s %d\n", strings.Replace(inf, fname, fname+"_bucket", 1), cum); err != nil {
		return err
	}
	sum := strconv.FormatFloat(float64(h.Sum)*h.Unit.scale(), 'g', -1, 64)
	fsum, labels := family(s.Name)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fsum, labels, sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fsum, labels, cum)
	return err
}

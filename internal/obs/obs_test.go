package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines while snapshots are being taken, then checks the final
// totals are exact: Observe must lose nothing under contention.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(Seconds, TimeBuckets)
	const (
		writers = 8
		perG    = 20000
	)
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	for i := 0; i < 2; i++ {
		snaps.Add(1)
		go func() {
			defer snaps.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				var sum int64
				for _, b := range s.Buckets {
					sum += b
				}
				// A snapshot races individual observations, but bucket
				// totals can never exceed the global count read after them.
				if c := h.Count(); sum > c+writers*2 {
					t.Errorf("snapshot buckets sum %d far ahead of count %d", sum, c)
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Spread observations across buckets deterministically.
				h.Observe(int64(i%len(TimeBuckets))*100e3 + 1)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	s := h.Snapshot()
	if want := int64(writers * perG); s.Count != want {
		t.Fatalf("Count = %d, want %d", s.Count, want)
	}
	var sum int64
	for _, b := range s.Buckets {
		sum += b
	}
	if want := int64(writers * perG); sum != want {
		t.Fatalf("bucket sum = %d, want %d", sum, want)
	}
}

// TestPrometheusExposition is the golden test for the text format:
// counters, gauges, labelled series sharing one family, and a
// histogram with cumulative buckets and unit scaling.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("gdn_test_ops_total", "ops served").Add(3)
	r.Counter(`gdn_test_responses_total{class="2xx"}`, "responses by class").Add(7)
	r.Counter(`gdn_test_responses_total{class="5xx"}`, "responses by class").Add(1)
	r.Gauge("gdn_test_inflight", "in-flight requests").Set(2)
	h := r.Histogram("gdn_test_latency_seconds", "op latency", Seconds, []int64{1e6, 10e6})
	h.Observe(5e5)  // 0.5ms -> first bucket
	h.Observe(5e6)  // 5ms   -> second bucket
	h.Observe(50e6) // 50ms  -> +Inf bucket

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP gdn_test_inflight in-flight requests
# TYPE gdn_test_inflight gauge
gdn_test_inflight 2
# HELP gdn_test_latency_seconds op latency
# TYPE gdn_test_latency_seconds histogram
gdn_test_latency_seconds_bucket{le="0.001"} 1
gdn_test_latency_seconds_bucket{le="0.01"} 2
gdn_test_latency_seconds_bucket{le="+Inf"} 3
gdn_test_latency_seconds_sum 0.0555
gdn_test_latency_seconds_count 3
# HELP gdn_test_ops_total ops served
# TYPE gdn_test_ops_total counter
gdn_test_ops_total 3
# HELP gdn_test_responses_total responses by class
# TYPE gdn_test_responses_total counter
gdn_test_responses_total{class="2xx"} 7
gdn_test_responses_total{class="5xx"} 1
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestCounterValueAbsent(t *testing.T) {
	r := NewRegistry()
	if v := r.CounterValue("gdn_never_registered_total"); v != 0 {
		t.Fatalf("CounterValue = %d, want 0", v)
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("CounterValue must not create series")
	}
}

// TestSpanTree checks hop regeneration: children share the trace ID,
// get fresh span IDs, and record their parent.
func TestSpanTree(t *testing.T) {
	tr := NewTracer(16)
	root := tr.StartTrace("edge")
	child := tr.StartSpan(root.Context(), "hop1")
	grand := tr.StartSpan(child.Context(), "hop2")
	time.Sleep(time.Millisecond)
	grand.End()
	child.End()
	root.End()

	recs := tr.Recent()
	if len(recs) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(recs))
	}
	byName := make(map[string]SpanRecord)
	for _, r := range recs {
		byName[r.Name] = r
	}
	rootR, childR, grandR := byName["edge"], byName["hop1"], byName["hop2"]
	if childR.Trace != rootR.Trace || grandR.Trace != rootR.Trace {
		t.Fatal("trace ID not shared down the chain")
	}
	if childR.Span == rootR.Span || grandR.Span == childR.Span {
		t.Fatal("span IDs must be regenerated at each hop")
	}
	if childR.Parent != rootR.Span || grandR.Parent != childR.Span {
		t.Fatal("parent links broken")
	}
	if grandR.Duration <= 0 {
		t.Fatal("duration not stamped")
	}
}

// TestNoopSpan checks the untraced fast path: invalid parents yield
// nil spans whose whole API is safe and records nothing.
func TestNoopSpan(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.StartSpan(SpanContext{}, "ignored")
	if sp != nil {
		t.Fatal("invalid parent must yield a nil span")
	}
	sp.SetError(fmt.Errorf("x"))
	if sp.Context().Valid() {
		t.Fatal("nil span context must be invalid")
	}
	sp.End()
	if got := len(tr.Recent()); got != 0 {
		t.Fatalf("nil span recorded %d spans", got)
	}
}

// TestTracesJSON checks grouping, ordering, and the rendered shape.
func TestTracesJSON(t *testing.T) {
	tr := NewTracer(16)
	a := tr.StartTrace("download A")
	tr.StartSpan(a.Context(), "replica").End()
	a.End()
	b := tr.StartTrace("download B")
	b.End()

	var out struct {
		Traces []struct {
			Trace string `json:"trace"`
			Spans []struct {
				Name   string  `json:"name"`
				Parent string  `json:"parent"`
				Ms     float64 `json:"ms"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(tr.TracesJSON(10), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(out.Traces))
	}
	// Newest first.
	if got := out.Traces[0].Spans[0].Name; got != "download B" {
		t.Fatalf("first trace is %q, want the newest (download B)", got)
	}
	two := out.Traces[1]
	if len(two.Spans) != 2 {
		t.Fatalf("trace A has %d spans, want 2", len(two.Spans))
	}
	if want := fmt.Sprintf("%016x", a.Context().Trace); two.Trace != want {
		t.Fatalf("trace ID %s, want %s", two.Trace, want)
	}
	names := []string{two.Spans[0].Name, two.Spans[1].Name}
	if !strings.Contains(strings.Join(names, ","), "replica") {
		t.Fatalf("child span missing from trace A: %v", names)
	}
}

// TestRingBound checks the ring overwrites oldest-first at capacity.
func TestRingBound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		s := tr.StartTrace(fmt.Sprintf("t%d", i))
		s.End()
	}
	recs := tr.Recent()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	if recs[0].Name != "t2" || recs[3].Name != "t5" {
		t.Fatalf("ring order wrong: %q..%q", recs[0].Name, recs[3].Name)
	}
}

// TestHistogramQuantileDelta checks the benchmark-facing snapshot
// arithmetic: Delta isolates a bracketed section and Quantile
// interpolates inside the right bucket.
func TestHistogramQuantileDelta(t *testing.T) {
	h := newHistogram(Seconds, TimeBuckets)
	// Setup noise the delta must cancel out.
	for i := 0; i < 100; i++ {
		h.Observe(20e9) // past the last bound: overflow bucket
	}
	before := h.Snapshot()
	// Measured section: 90 fast observations, 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(20e3) // 10µs..25µs bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(2e9) // 1s..2.5s bucket
	}
	d := h.Snapshot().Delta(before)
	if d.Count != 100 {
		t.Fatalf("delta count = %d, want 100", d.Count)
	}
	if p50 := d.Quantile(0.50); p50 < 10e3 || p50 > 25e3 {
		t.Fatalf("p50 = %v, want within the 10µs..25µs bucket", p50)
	}
	if p99 := d.Quantile(0.99); p99 < 1e9 || p99 > 2.5e9 {
		t.Fatalf("p99 = %v, want within the 1s..2.5s bucket", p99)
	}
	// The overflow bucket estimates as the largest finite bound.
	if q := before.Quantile(0.5); q != float64(TimeBuckets[len(TimeBuckets)-1]) {
		t.Fatalf("overflow quantile = %v", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

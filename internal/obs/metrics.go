package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. All methods are
// lock-free and safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative d allowed).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Unit names a histogram's native integer unit and how exposition
// scales it: durations are recorded in nanoseconds and exposed in
// seconds (the Prometheus convention), sizes are recorded and exposed
// in bytes.
type Unit int

const (
	// Seconds: Observe takes nanoseconds, exposition divides by 1e9.
	Seconds Unit = iota
	// Bytes: Observe takes bytes, exposed unscaled.
	Bytes
)

func (u Unit) scale() float64 {
	if u == Seconds {
		return 1e-9
	}
	return 1
}

// TimeBuckets is the default latency bucket layout, in nanoseconds:
// 10µs to 10s, roughly 2.5x apart — wide enough to cover a pooled-hit
// store get and a WAN-chaos RPC in the same histogram.
var TimeBuckets = []int64{
	10e3, 25e3, 50e3, 100e3, 250e3, 500e3,
	1e6, 2.5e6, 5e6, 10e6, 25e6, 50e6, 100e6, 250e6, 500e6,
	1e9, 2.5e9, 5e9, 10e9,
}

// SizeBuckets is the default size bucket layout, in bytes: 1 KiB to
// 64 MiB, 4x apart — chunk-sized payloads land mid-range.
var SizeBuckets = []int64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// Histogram is a fixed-bucket histogram with a lock-free Observe:
// per-bucket atomic counts plus an atomic sum and total. Snapshots
// read the atomics without stopping writers, so a snapshot taken
// during a burst may be internally skewed by in-flight observations —
// fine for monitoring, documented so tests quiesce first.
type Histogram struct {
	unit    Unit
	bounds  []int64 // ascending upper bounds; an implicit +Inf bucket follows
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func newHistogram(unit Unit, bounds []int64) *Histogram {
	return &Histogram{
		unit:    unit,
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value in the histogram's native unit
// (nanoseconds for Seconds histograms, bytes for Bytes histograms).
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since start; a convenience
// for the common defer-style latency observation.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values in the native unit.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Unit    Unit
	Bounds  []int64 // upper bounds; Buckets has one more entry (+Inf)
	Buckets []int64 // non-cumulative per-bucket counts
	Count   int64
	Sum     int64
}

// Delta returns the observations recorded between prev and s as a
// snapshot of their own: benchmarks bracket a measured section with
// two snapshots and read quantiles from the difference, so metrics
// accumulated by setup (or earlier benchmarks) do not pollute the
// number.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Unit:    s.Unit,
		Bounds:  s.Bounds,
		Buckets: make([]int64, len(s.Buckets)),
		Count:   s.Count - prev.Count,
		Sum:     s.Sum - prev.Sum,
	}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i]
		if i < len(prev.Buckets) {
			d.Buckets[i] -= prev.Buckets[i]
		}
	}
	return d
}

// Quantile estimates the q-quantile (0 < q <= 1) of the snapshot in
// the histogram's native unit, interpolating linearly within the
// bucket the quantile lands in. Observations in the overflow bucket
// estimate as the largest bound. An empty snapshot estimates 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Bounds) == 0 {
		return 0
	}
	target := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Buckets {
		if c <= 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i >= len(s.Bounds) {
				return float64(s.Bounds[len(s.Bounds)-1])
			}
			lo := 0.0
			if i > 0 {
				lo = float64(s.Bounds[i-1])
			}
			hi := float64(s.Bounds[i])
			return lo + (hi-lo)*(target-cum)/float64(c)
		}
		cum = next
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// Snapshot reads the histogram's atomics. See the type comment for
// the consistency caveat.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Unit:    h.unit,
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// metricKind tags registry entries for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered series: a full name (which may carry a
// {label="value"} suffix), an optional help string set by the first
// registration of the family, and the instrument.
type metric struct {
	name string
	help string
	kind metricKind
	ctr  *Counter
	gge  *Gauge
	hst  *Histogram
}

// family splits a series name into its family (the part before any
// label braces) and the label suffix ("" when unlabelled).
func family(name string) (string, string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// Registry is a named collection of metrics. Get-or-create lookups
// take a short mutex; the returned instruments are lock-free, so call
// sites cache the handle (typically in a package-level var) and never
// touch the map on the hot path.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// Default is the process-wide registry every package instruments
// against; the daemon debug mux exposes it.
var Default = NewRegistry()

func (r *Registry) get(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.ctr = &Counter{}
	case kindGauge:
		m.gge = &Gauge{}
	}
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the named counter, creating it on first use. name
// follows Prometheus conventions (see doc.go); a registered name is
// permanent for the life of the registry.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.get(name, help, kindCounter)
	if m.ctr == nil {
		panic("obs: " + name + " registered as a different kind")
	}
	return m.ctr
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.get(name, help, kindGauge)
	if m.gge == nil {
		panic("obs: " + name + " registered as a different kind")
	}
	return m.gge
}

// Histogram returns the named histogram, creating it on first use
// with the given unit and bucket bounds. Later lookups of the same
// name ignore the bounds arguments.
func (r *Registry) Histogram(name, help string, unit Unit, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.hst == nil {
			panic("obs: " + name + " registered as a different kind")
		}
		return m.hst
	}
	m := &metric{name: name, help: help, kind: kindHistogram, hst: newHistogram(unit, bounds)}
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m.hst
}

// Sample is one series' value in a registry snapshot: exactly one of
// Hist is non-nil (histograms) or Value is meaningful (counters and
// gauges).
type Sample struct {
	Name  string
	Kind  string // "counter", "gauge", "histogram"
	Value int64
	Hist  *HistogramSnapshot
}

// Snapshot returns every registered series, sorted by name. Used by
// experiment dumps and the E12 invariant checks; exposition uses
// WritePrometheus instead.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	ms := make([]*metric, len(r.ordered))
	copy(ms, r.ordered)
	r.mu.Unlock()

	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		s := Sample{Name: m.name}
		switch m.kind {
		case kindCounter:
			s.Kind, s.Value = "counter", m.ctr.Value()
		case kindGauge:
			s.Kind, s.Value = "gauge", m.gge.Value()
		case kindHistogram:
			h := m.hst.Snapshot()
			s.Kind, s.Hist = "histogram", &h
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CounterValue returns the named counter's current value, or 0 when
// it has not been registered — convenient for assertions that must
// not themselves create series.
func (r *Registry) CounterValue(name string) int64 {
	r.mu.Lock()
	m, ok := r.byName[name]
	r.mu.Unlock()
	if !ok || m.ctr == nil {
		return 0
	}
	return m.ctr.Value()
}

// Package obs is the observability plane: a dependency-free atomic
// metrics registry plus request-scoped trace propagation, shared by
// every layer of the stack and exposed live on each daemon's debug
// mux (see internal/daemon).
//
// # Metric naming conventions
//
// Every series name follows the Prometheus conventions:
//
//   - prefix gdn_, then the owning subsystem: gdn_rpc_*, gdn_store_*,
//     gdn_gls_*, gdn_repl_*, gdn_httpd_*, gdn_peerset_*.
//   - counters end in _total; histograms end in their exposition unit
//     (_seconds, _bytes); gauges name the instantaneous quantity.
//   - low-cardinality variants ride a {label="value"} suffix baked
//     into the series name (e.g. gdn_httpd_responses_total{class="2xx"},
//     gdn_gls_op_seconds{op="lookup"}). Labels are static: a fixed,
//     small set of values chosen at the call site — never request
//     paths, addresses, or object IDs, which would grow the registry
//     without bound. High-cardinality detail belongs in trace spans,
//     whose ring is bounded.
//
// Durations are recorded in nanoseconds and exposed in seconds; sizes
// are recorded and exposed in bytes.
//
// # Overhead budget
//
// The plane is built to sit on the hot path:
//
//   - Counter/Gauge ops are one atomic add. Histogram.Observe is a
//     short bounds scan plus three atomic adds — no locks, no
//     allocation. Call sites cache instrument handles in package-level
//     vars so the registry map is never touched per request.
//   - An untraced request carries a zero SpanContext: no extra wire
//     bytes (the 16-byte trace tail is appended only when valid), nil
//     *Span no-ops everywhere, zero ring writes. Only requests that a
//     root (the HTTPD, or a traced experiment) explicitly traces pay
//     for spans, and a recorded span costs one short mutexed ring
//     write at End.
//
// The budget is enforced by CI: bench-smoke compares
// BenchmarkRPC_CallParallel (untraced unary hot path) and
// BenchmarkE5_Download_Large (traced download path) against the
// committed BENCH_seed.json baseline and fails the build on >25%
// regression; the acceptance bar for this plane's introduction was
// <5% on both.
//
// # Trace propagation
//
// A SpanContext is 16 bytes on the wire: trace ID then span ID,
// appended to the RPC request frame as an optional tail (old frames
// without it still decode). Each hop regenerates the span: the client
// sends its own span's context, the server starts a fresh child span
// for the handler and propagates that context into any nested calls
// the handler makes, so one HTTP download threads a single trace ID
// from the edge HTTPD through proxy caches and replicas down to the
// store walk that feeds the stream. Completed spans land in a bounded
// in-memory ring (DefaultTracer), served as JSON at
// /debug/gdn/traces.
package obs

package netsim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"gdn/internal/transport"
)

// LinkFaults is the frame-perturbation spec for one link class.
// Probabilities are per frame in [0, 1]; the zero value is a clean
// link. Faults apply at send time, so both directions of a connection
// are perturbed independently.
type LinkFaults struct {
	// Loss drops the frame silently: the sender sees success, the
	// receiver sees nothing. Reliable-delivery layers above (RPC
	// deadlines, retries) must recover.
	Loss float64
	// Dup delivers the frame twice, the way a retransmission races its
	// original on real networks.
	Dup float64
	// Reorder holds the frame back one slot: it is delivered after the
	// next frame this endpoint sends (a one-frame reordering window).
	Reorder float64
	// Jitter adds a uniformly random extra virtual cost in [0, Jitter]
	// to each frame, modelling queueing-delay variance.
	Jitter time.Duration
}

func (f LinkFaults) isZero() bool {
	return f.Loss == 0 && f.Dup == 0 && f.Reorder == 0 && f.Jitter == 0
}

// String renders the spec for schedule timelines.
func (f LinkFaults) String() string {
	if f.isZero() {
		return "clean"
	}
	var parts []string
	if f.Loss > 0 {
		parts = append(parts, fmt.Sprintf("loss=%.3g", f.Loss))
	}
	if f.Dup > 0 {
		parts = append(parts, fmt.Sprintf("dup=%.3g", f.Dup))
	}
	if f.Reorder > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%.3g", f.Reorder))
	}
	if f.Jitter > 0 {
		parts = append(parts, fmt.Sprintf("jitter=%s", f.Jitter))
	}
	return strings.Join(parts, " ")
}

// SetLinkFaults installs a fault spec on one link class. Passing the
// zero LinkFaults restores clean delivery for that class.
func (n *Network) SetLinkFaults(class LinkClass, f LinkFaults) {
	if class < Loopback || class > WideArea {
		return
	}
	n.mu.Lock()
	n.faults[class] = f
	n.mu.Unlock()
}

// ClearFaults restores clean delivery on every link class. A frame
// currently held in a reordering window stays held until its
// connection's next send flushes it (equivalent to tail jitter).
func (n *Network) ClearFaults() {
	n.mu.Lock()
	n.faults = [WideArea + 1]LinkFaults{}
	n.mu.Unlock()
}

// SeedFaults seeds the frame-level fault PRNGs and resets the
// connection sequence and fault counters, so a workload started after
// this call draws a reproducible fault pattern (see the package
// comment's seed discipline). Existing connections keep their PRNGs.
func (n *Network) SeedFaults(seed int64) {
	n.mu.Lock()
	n.seed = seed
	n.connSeq = 0
	n.mu.Unlock()
	n.lost.Store(0)
	n.duped.Store(0)
	n.heldCnt.Store(0)
}

// FaultStats counts frame-level fault injections since the last
// SeedFaults. These are diagnostic: they depend on how many frames the
// workload happened to send, so deterministic experiments must not
// assert exact values — though one-sided bounds are safe (e.g. E12's
// "seqconn condemnations never exceed injected faults").
type FaultStats struct {
	Lost       int64
	Duplicated int64
	Reordered  int64
}

// FaultStats returns a snapshot of injected-fault counts.
func (n *Network) FaultStats() FaultStats {
	return FaultStats{
		Lost:       n.lost.Load(),
		Duplicated: n.duped.Load(),
		Reordered:  n.heldCnt.Load(),
	}
}

// faultSeed derives a connection endpoint's PRNG seed from the network
// seed, the dial's endpoint addresses, its sequence number, and which
// end of the pair this is.
func faultSeed(seed int64, dialerAddr, targetAddr string, seq int64, end int64) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s", dialerAddr, targetAddr)
	return seed ^ int64(h.Sum64()) ^ (seq << 8) ^ end
}

// sendFaulty is the perturbed send path: it runs the loss / duplication
// / reordering / jitter pipeline under the connection's fault mutex.
// Holding faultMu across deliveries keeps the reordering swap atomic;
// the receiver drains independently, so this cannot deadlock.
func (c *conn) sendFaulty(p []byte, class LinkClass, cost time.Duration, fl LinkFaults) error {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.rngSeed))
	}
	if fl.Jitter > 0 {
		cost += time.Duration(c.rng.Int63n(int64(fl.Jitter) + 1))
	}
	if fl.Loss > 0 && c.rng.Float64() < fl.Loss {
		// The frame vanishes mid-path: the sender has no way to know.
		c.net.lost.Add(1)
		return nil
	}
	dup := fl.Dup > 0 && c.rng.Float64() < fl.Dup
	if c.held == nil && fl.Reorder > 0 && c.rng.Float64() < fl.Reorder {
		// Open a one-frame reordering window: park a copy and deliver
		// it after the next frame.
		cp := transport.GetFrame(len(p))
		copy(cp, p)
		c.held = &frame{payload: cp, cost: cost}
		c.hasHeld.Store(true)
		c.net.heldCnt.Add(1)
		return nil
	}
	if err := c.deliver(p, class, cost); err != nil {
		return err
	}
	if dup {
		c.net.duped.Add(1)
		if err := c.deliver(p, class, cost); err != nil {
			return err
		}
	}
	if held := c.held; held != nil {
		// Close the window: the delayed frame follows the one that
		// overtook it.
		c.held = nil
		c.hasHeld.Store(false)
		select {
		case <-c.closed:
			transport.PutFrame(held.payload)
		case <-c.peerClosed:
			transport.PutFrame(held.payload)
		case c.out <- *held:
			c.net.record(class, len(held.payload))
		}
	}
	return nil
}

package netsim

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gdn/internal/transport"
)

// pair establishes a connection from -> to ("svc" listener on to) and
// returns both ends.
func pair(t *testing.T, n *Network, from, to string) (client, server transport.Conn) {
	t.Helper()
	l, err := n.Listen(to + ":svc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	c, err := n.Dial(from, to+":svc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	s := <-accepted
	t.Cleanup(func() { s.Close() })
	return c, s
}

func TestPartitionOneWayIsAsymmetric(t *testing.T) {
	n := world(t)
	client, server := pair(t, n, "eu-nl-vu", "us-ca-ucb")

	n.PartitionOneWay("eu-nl-vu", "us-ca-ucb")

	// The cut direction fails at send time.
	if err := client.Send([]byte("req")); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("send on cut direction = %v, want ErrUnreachable", err)
	}
	// The reverse direction still flows on the same connection.
	if err := server.Send([]byte("resp")); err != nil {
		t.Fatalf("send on open direction: %v", err)
	}
	if p, _, err := client.Recv(); err != nil || string(p) != "resp" {
		t.Fatalf("recv on open direction = %q, %v", p, err)
	}
	// New dials fail from the cut side only.
	if _, err := n.Dial("eu-nl-vu", "us-ca-ucb:svc"); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("dial across cut = %v, want ErrUnreachable", err)
	}
	l, err := n.Listen("eu-nl-vu:back")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		if c, err := l.Accept(); err == nil {
			c.Close()
		}
	}()
	if _, err := n.Dial("us-ca-ucb", "eu-nl-vu:back"); err != nil {
		t.Fatalf("dial against cut direction: %v", err)
	}

	n.HealOneWay("eu-nl-vu", "us-ca-ucb")
	if err := client.Send([]byte("again")); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
}

func TestSymmetricPartitionIsBothOneWays(t *testing.T) {
	n := world(t)
	client, server := pair(t, n, "eu-nl-vu", "us-ca-ucb")

	n.Partition("eu-nl-vu", "us-ca-ucb")
	if err := client.Send([]byte("a")); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("client send = %v", err)
	}
	if err := server.Send([]byte("b")); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("server send = %v", err)
	}
	// Healing one direction restores only that direction.
	n.HealOneWay("us-ca-ucb", "eu-nl-vu")
	if err := server.Send([]byte("b")); err != nil {
		t.Fatalf("server send after one-way heal: %v", err)
	}
	if err := client.Send([]byte("a")); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("client send after one-way heal = %v", err)
	}
	n.Heal("eu-nl-vu", "us-ca-ucb")
	if err := client.Send([]byte("a")); err != nil {
		t.Fatalf("client send after heal: %v", err)
	}
}

func TestHealAllClearsEveryCut(t *testing.T) {
	n := world(t)
	n.Partition("eu-nl-vu", "us-ca-ucb")
	n.PartitionOneWay("ap-jp-ut", "eu-de-tub")
	n.HealAll()
	client, _ := pair(t, n, "eu-nl-vu", "us-ca-ucb")
	if err := client.Send([]byte("x")); err != nil {
		t.Fatalf("send after HealAll: %v", err)
	}
}

func TestCrashSeversEstablishedConns(t *testing.T) {
	n := world(t)
	client, _ := pair(t, n, "eu-nl-vu", "us-ca-ucb")

	n.Crash("us-ca-ucb")
	// The peer observes a closed connection, not a silent wedge.
	if _, _, err := client.Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("recv from crashed peer = %v, want ErrClosed", err)
	}
	if _, err := n.Dial("eu-nl-vu", "us-ca-ucb:svc"); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("dial to crashed site = %v, want ErrUnreachable", err)
	}

	// After restart the surviving listener accepts again.
	n.Restart("us-ca-ucb")
	c2, err := n.Dial("eu-nl-vu", "us-ca-ucb:svc")
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	c2.Close()
}

func TestLossFaultDropsFramesSilently(t *testing.T) {
	n := world(t)
	client, server := pair(t, n, "eu-nl-vu", "us-ca-ucb")
	_ = server

	n.SetLinkFaults(WideArea, LinkFaults{Loss: 1})
	if err := client.Send([]byte("vanishes")); err != nil {
		t.Fatalf("lossy send reported error: %v", err)
	}
	n.ClearFaults()
	if err := client.Send([]byte("marker")); err != nil {
		t.Fatal(err)
	}
	// The lost frame never arrives: the first delivery is the marker.
	if p, _, err := server.Recv(); err != nil || string(p) != "marker" {
		t.Fatalf("first delivered frame = %q, %v (lost frame leaked through?)", p, err)
	}
	if st := n.FaultStats(); st.Lost != 1 {
		t.Fatalf("FaultStats.Lost = %d, want 1", st.Lost)
	}
}

func TestDupFaultDeliversTwice(t *testing.T) {
	n := world(t)
	client, server := pair(t, n, "eu-nl-vu", "us-ca-ucb")

	n.SetLinkFaults(WideArea, LinkFaults{Dup: 1})
	defer n.ClearFaults()
	if err := client.Send([]byte("twin")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if p, _, err := server.Recv(); err != nil || string(p) != "twin" {
			t.Fatalf("delivery %d = %q, %v", i, p, err)
		}
	}
	if st := n.FaultStats(); st.Duplicated != 1 {
		t.Fatalf("FaultStats.Duplicated = %d, want 1", st.Duplicated)
	}
}

func TestReorderWindowSwapsAdjacentFrames(t *testing.T) {
	n := world(t)
	client, server := pair(t, n, "eu-nl-vu", "us-ca-ucb")

	n.SetLinkFaults(WideArea, LinkFaults{Reorder: 1})
	defer n.ClearFaults()
	if err := client.Send([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := client.Send([]byte("second")); err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, 2)
	for i := 0; i < 2; i++ {
		p, _, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(p))
	}
	if got[0] != "second" || got[1] != "first" {
		t.Fatalf("delivery order = %v, want [second first]", got)
	}
}

func TestClearFaultsFlushesHeldFrameOnNextSend(t *testing.T) {
	n := world(t)
	client, server := pair(t, n, "eu-nl-vu", "us-ca-ucb")

	n.SetLinkFaults(WideArea, LinkFaults{Reorder: 1})
	if err := client.Send([]byte("held")); err != nil {
		t.Fatal(err)
	}
	n.ClearFaults()
	if err := client.Send([]byte("next")); err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < 2; i++ {
		p, _, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(p))
	}
	if got[0] != "next" || got[1] != "held" {
		t.Fatalf("delivery order = %v, want [next held]", got)
	}
}

func TestJitterAddsVirtualCost(t *testing.T) {
	n := world(t)
	client, server := pair(t, n, "eu-nl-vu", "us-ca-ucb")

	if err := client.Send([]byte("clean")); err != nil {
		t.Fatal(err)
	}
	_, base, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	n.SetLinkFaults(WideArea, LinkFaults{Jitter: time.Second})
	defer n.ClearFaults()
	var jittered bool
	for i := 0; i < 32 && !jittered; i++ {
		if err := client.Send([]byte("jit")); err != nil {
			t.Fatal(err)
		}
		_, cost, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		jittered = cost > base
	}
	if !jittered {
		t.Fatal("no frame picked up jitter cost")
	}
}

// lossPattern sends count frames across a fresh lossy network seeded
// with seed and reports which indices arrive.
func lossPattern(t *testing.T, seed int64, count int) string {
	t.Helper()
	n := world(t)
	n.SeedFaults(seed)
	client, server := pair(t, n, "eu-nl-vu", "us-ca-ucb")
	n.SetLinkFaults(WideArea, LinkFaults{Loss: 0.3})
	for i := 0; i < count; i++ {
		if err := client.Send([]byte(fmt.Sprintf("f%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	n.ClearFaults()
	if err := client.Send([]byte("end")); err != nil {
		t.Fatal(err)
	}
	var got string
	for {
		p, _, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(p) == "end" {
			return got
		}
		got += string(p) + ","
	}
}

func TestFaultPatternReplaysFromSeed(t *testing.T) {
	a := lossPattern(t, 42, 200)
	b := lossPattern(t, 42, 200)
	if a != b {
		t.Fatalf("same seed produced different loss patterns:\n%s\nvs\n%s", a, b)
	}
	c := lossPattern(t, 43, 200)
	if a == c {
		t.Fatal("different seeds produced identical loss patterns over 200 frames")
	}
}

func TestScheduleRunnerTimelineAndDigest(t *testing.T) {
	s := Schedule{
		Name: "demo",
		Seed: 7,
		Steps: []Step{
			{At: 2 * time.Second, Action: Action{Kind: ActHeal, A: "eu-nl-vu", B: "us-ca-ucb"}},
			{At: time.Second, Action: Action{Kind: ActPartitionOneWay, A: "eu-nl-vu", B: "us-ca-ucb"}},
			{At: 3 * time.Second, Action: Action{Kind: ActCrash, A: "us-ca-ucb"}},
			{At: 4 * time.Second, Action: Action{Kind: ActRestart, A: "us-ca-ucb"}},
		},
	}
	n := world(t)
	r := NewRunner(n, s)
	if fired := r.AdvanceTo(0); len(fired) != 0 {
		t.Fatalf("fired at T=0: %v", fired)
	}
	if fired := r.AdvanceTo(2 * time.Second); len(fired) != 2 {
		t.Fatalf("fired at T=2s: %v", fired)
	}
	// The one-way cut from step 1 is active until... step 2 healed it.
	client, _ := pair(t, n, "eu-nl-vu", "us-ca-ucb")
	if err := client.Send([]byte("x")); err != nil {
		t.Fatalf("send after heal step: %v", err)
	}
	rest := r.Finish()
	if len(rest) != 2 || !r.Done() {
		t.Fatalf("Finish fired %v, done=%v", rest, r.Done())
	}
	want := []string{
		"T=1s partition eu-nl-vu -> us-ca-ucb",
		"T=2s heal eu-nl-vu <-> us-ca-ucb",
		"T=3s crash us-ca-ucb",
		"T=4s restart us-ca-ucb",
	}
	got := r.Timeline()
	if len(got) != len(want) {
		t.Fatalf("timeline = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("timeline[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if d1, d2 := s.Digest(), s.Digest(); d1 != d2 || len(d1) != 12 {
		t.Fatalf("digest unstable: %q vs %q", d1, d2)
	}
}

func TestRandomScheduleIsDeterministic(t *testing.T) {
	sites := []string{"eu-nl-vu", "eu-de-tub", "us-ca-ucb", "ap-jp-ut"}
	a := RandomSchedule("r", 99, sites, 10*time.Second)
	b := RandomSchedule("r", 99, sites, 10*time.Second)
	if a.Digest() != b.Digest() {
		t.Fatal("same seed produced different schedules")
	}
	if len(a.Steps) < 4 {
		t.Fatalf("schedule too small: %d steps", len(a.Steps))
	}
	c := RandomSchedule("r", 100, sites, 10*time.Second)
	if a.Digest() == c.Digest() {
		t.Fatal("different seeds produced identical schedules")
	}
	// Every run ends healed.
	last := a.Steps[len(a.Steps)-1]
	if last.Action.Kind != ActClearFaults {
		t.Fatalf("schedule does not end with ActClearFaults: %v", last.Action)
	}
}

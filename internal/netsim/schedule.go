package netsim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// ActionKind enumerates the fault actions a Schedule can program.
type ActionKind int

// Schedule action kinds.
const (
	// ActPartition cuts sites A and B in both directions.
	ActPartition ActionKind = iota
	// ActPartitionOneWay cuts A -> B only.
	ActPartitionOneWay
	// ActHeal restores A <-> B.
	ActHeal
	// ActHealOneWay restores A -> B.
	ActHealOneWay
	// ActHealAll removes every partition.
	ActHealAll
	// ActCrash takes site A down and severs its connections.
	ActCrash
	// ActRestart brings site A back.
	ActRestart
	// ActSetFaults installs Faults on link Class.
	ActSetFaults
	// ActClearFaults restores clean delivery on every class.
	ActClearFaults
)

// Action is one fault operation. Which fields matter depends on Kind:
// site actions use A (and B for pair actions), ActSetFaults uses Class
// and Faults.
type Action struct {
	Kind   ActionKind
	A, B   string
	Class  LinkClass
	Faults LinkFaults
}

// String renders the action for timelines and digests.
func (a Action) String() string {
	switch a.Kind {
	case ActPartition:
		return fmt.Sprintf("partition %s <-> %s", a.A, a.B)
	case ActPartitionOneWay:
		return fmt.Sprintf("partition %s -> %s", a.A, a.B)
	case ActHeal:
		return fmt.Sprintf("heal %s <-> %s", a.A, a.B)
	case ActHealOneWay:
		return fmt.Sprintf("heal %s -> %s", a.A, a.B)
	case ActHealAll:
		return "heal all"
	case ActCrash:
		return fmt.Sprintf("crash %s", a.A)
	case ActRestart:
		return fmt.Sprintf("restart %s", a.A)
	case ActSetFaults:
		return fmt.Sprintf("faults %s: %s", a.Class, a.Faults)
	case ActClearFaults:
		return "clear faults"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(a.Kind))
	}
}

// apply executes the action against a network.
func (a Action) apply(n *Network) {
	switch a.Kind {
	case ActPartition:
		n.Partition(a.A, a.B)
	case ActPartitionOneWay:
		n.PartitionOneWay(a.A, a.B)
	case ActHeal:
		n.Heal(a.A, a.B)
	case ActHealOneWay:
		n.HealOneWay(a.A, a.B)
	case ActHealAll:
		n.HealAll()
	case ActCrash:
		n.Crash(a.A)
	case ActRestart:
		n.Restart(a.A)
	case ActSetFaults:
		n.SetLinkFaults(a.Class, a.Faults)
	case ActClearFaults:
		n.ClearFaults()
	}
}

// Step is one scheduled action at an offset from the run's start.
type Step struct {
	At     time.Duration
	Action Action
}

// Schedule is a chaos program: a named, seeded list of timestamped
// fault actions. The schedule fully determines the fault timeline; the
// seed additionally drives frame-level fault PRNGs (see the package
// comment's seed discipline), so a run is replayed by re-running the
// same Schedule value.
type Schedule struct {
	Name  string
	Seed  int64
	Steps []Step
}

// Digest returns a short hex digest over the schedule's name, seed and
// sorted steps. Two runs of the same schedule report the same digest —
// the determinism check experiments assert on.
func (s Schedule) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s/%d\n", s.Name, s.Seed)
	for _, st := range sortedSteps(s.Steps) {
		fmt.Fprintf(h, "%d %s\n", st.At, st.Action)
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}

func sortedSteps(steps []Step) []Step {
	out := make([]Step, len(steps))
	copy(out, steps)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Runner applies a Schedule to a Network as the caller's clock
// advances. It seeds the network's fault PRNGs from the schedule's
// seed at construction, so create the runner before starting the
// workload under test.
type Runner struct {
	net      *Network
	steps    []Step
	next     int
	timeline []string
}

// NewRunner prepares a schedule for execution: steps are sorted by
// offset (ties keep program order) and the network's fault PRNGs are
// seeded from the schedule seed.
func NewRunner(n *Network, s Schedule) *Runner {
	n.SeedFaults(s.Seed)
	return &Runner{net: n, steps: sortedSteps(s.Steps)}
}

// AdvanceTo applies every not-yet-applied step with At <= t, in order,
// and returns the timeline entries it fired. Call it with a
// monotonically advancing t (virtual or wall offset from the run's
// start).
func (r *Runner) AdvanceTo(t time.Duration) []string {
	var fired []string
	for r.next < len(r.steps) && r.steps[r.next].At <= t {
		st := r.steps[r.next]
		st.Action.apply(r.net)
		fired = append(fired, fmt.Sprintf("T=%s %s", st.At, st.Action))
		r.next++
	}
	r.timeline = append(r.timeline, fired...)
	return fired
}

// Finish applies all remaining steps regardless of offset, so a run
// always ends in the schedule's final state (typically healed).
func (r *Runner) Finish() []string {
	var fired []string
	for r.next < len(r.steps) {
		st := r.steps[r.next]
		st.Action.apply(r.net)
		fired = append(fired, fmt.Sprintf("T=%s %s", st.At, st.Action))
		r.next++
	}
	r.timeline = append(r.timeline, fired...)
	return fired
}

// Done reports whether every step has been applied.
func (r *Runner) Done() bool { return r.next >= len(r.steps) }

// Timeline returns every applied step so far, in application order.
// For a given Schedule the full timeline is identical on every run.
func (r *Runner) Timeline() []string {
	out := make([]string, len(r.timeline))
	copy(out, r.timeline)
	return out
}

// RandomSchedule generates a seeded chaos program over the given sites:
// link flaps (short symmetric cuts), one-way partitions, fault bursts
// on the wide-area class, and crash/restart episodes, all healed by
// span. The same (seed, sites, span) always yields the same program.
func RandomSchedule(name string, seed int64, sites []string, span time.Duration) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Name: name, Seed: seed}
	if len(sites) < 2 || span <= 0 {
		return s
	}
	at := func(frac float64) time.Duration {
		return time.Duration(frac * float64(span))
	}
	episodes := 2 + rng.Intn(3)
	for i := 0; i < episodes; i++ {
		start := 0.1 + 0.7*rng.Float64()
		end := start + 0.05 + 0.15*rng.Float64()
		if end > 0.9 {
			end = 0.9
		}
		a := sites[rng.Intn(len(sites))]
		b := sites[rng.Intn(len(sites))]
		for b == a {
			b = sites[rng.Intn(len(sites))]
		}
		switch rng.Intn(4) {
		case 0: // link flap
			s.Steps = append(s.Steps,
				Step{At: at(start), Action: Action{Kind: ActPartition, A: a, B: b}},
				Step{At: at(end), Action: Action{Kind: ActHeal, A: a, B: b}})
		case 1: // asymmetric partition
			s.Steps = append(s.Steps,
				Step{At: at(start), Action: Action{Kind: ActPartitionOneWay, A: a, B: b}},
				Step{At: at(end), Action: Action{Kind: ActHealOneWay, A: a, B: b}})
		case 2: // lossy wide-area burst
			f := LinkFaults{
				Loss:    0.02 + 0.08*rng.Float64(),
				Dup:     0.02 * rng.Float64(),
				Reorder: 0.05 * rng.Float64(),
				Jitter:  time.Duration(rng.Intn(40)) * time.Millisecond,
			}
			s.Steps = append(s.Steps,
				Step{At: at(start), Action: Action{Kind: ActSetFaults, Class: WideArea, Faults: f}},
				Step{At: at(end), Action: Action{Kind: ActClearFaults}})
		default: // crash/restart
			s.Steps = append(s.Steps,
				Step{At: at(start), Action: Action{Kind: ActCrash, A: a}},
				Step{At: at(end), Action: Action{Kind: ActRestart, A: a}})
		}
	}
	s.Steps = append(s.Steps, Step{At: span, Action: Action{Kind: ActHealAll}},
		Step{At: span, Action: Action{Kind: ActClearFaults}})
	return s
}

// Package netsim simulates the wide-area network the GDN deploys on.
//
// The paper runs Globe Object Servers, GDN HTTPDs, location-service
// directory nodes and name servers "on machines all over the world"
// (§4). This package provides that world in-process: named sites grouped
// into regions, a pluggable latency/bandwidth cost model, byte metering
// per link class (local, regional, wide-area), and failure injection
// (site crashes and network partitions).
//
// The network is an implementation of transport.Network. Delivery is
// immediate — goroutines do not sleep — but every frame carries its
// virtual cost (propagation delay plus transmission time), which the RPC
// layer composes along call chains. Experiments therefore run at full
// CPU speed yet report wide-area latency and traffic shapes comparable
// to a real deployment, which is the property the paper's claims are
// about (see DESIGN.md §2, substitution 1).
//
// # Fault model
//
// Beyond clean delivery, the network injects faults at three levels:
//
//   - Connectivity: Partition/PartitionOneWay cut a site pair in both
//     or one direction (an asymmetric partition: A still reaches B
//     while B's frames to A fail), Heal/HealOneWay/HealAll restore it,
//     and SetDown marks a whole site unreachable. Crash additionally
//     severs every established connection touching the site — the
//     in-process servers keep running (their listeners persist), so
//     Restart models a machine returning with its network identity
//     intact; recovering soft state is the protocols' job (leases,
//     re-registration, re-subscription).
//   - Frame perturbation: SetLinkFaults attaches a LinkFaults spec to a
//     link class — probabilistic loss, duplication, a one-frame
//     reordering window, and added virtual-cost jitter. Faults apply at
//     send time on connections whose path has that class.
//   - Programs: a Schedule is a list of timestamped fault actions (cut,
//     heal, crash, restart, fault bursts) applied by a Runner as the
//     experiment's clock advances, so a whole chaos run is a value that
//     can be stored, printed and replayed.
//
// # Seed discipline
//
// Chaos runs are reproducible from a single seed. The schedule timeline
// — which faults fire, in what order, at which virtual times — is
// exactly deterministic: Runner applies steps in sorted order and its
// Timeline/Digest are pure functions of the Schedule. Frame-level fault
// decisions (which frame is lost or duplicated) come from a per-
// connection PRNG seeded from SeedFaults' seed, the connection's
// endpoint addresses, and a connection sequence number, so a given
// connection's fault pattern replays exactly when dials happen in the
// same order. Under concurrent load the dial order — and therefore the
// exact set of perturbed frames — may vary between runs; experiments
// that assert bit-identical results across runs must therefore compare
// scheduling-independent quantities (the timeline digest, corruption
// counts, invariant booleans), not raw loss counters.
package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gdn/internal/transport"
)

// LinkClass classifies the path between two sites.
type LinkClass int

// Link classes, from cheapest to most expensive.
const (
	// Loopback is traffic within one site (process to process on one
	// machine or LAN); it is never counted as network traffic.
	Loopback LinkClass = iota
	// Local is traffic between distinct sites in the same leaf domain,
	// e.g. a campus network.
	Local
	// Regional is traffic between sites in the same region (the paper's
	// country/MAN level of the GLS hierarchy).
	Regional
	// WideArea is intercontinental traffic, the scarce resource the GDN
	// exists to conserve (§3.1).
	WideArea
)

// String returns the link class name used in experiment tables.
func (c LinkClass) String() string {
	switch c {
	case Loopback:
		return "loopback"
	case Local:
		return "local"
	case Regional:
		return "regional"
	case WideArea:
		return "wide-area"
	default:
		return fmt.Sprintf("LinkClass(%d)", int(c))
	}
}

// Site is one machine room in the simulated world.
type Site struct {
	// ID is the unique site name, e.g. "eu-nl-vu".
	ID string
	// Domain is the leaf domain (campus/metro) the site belongs to.
	Domain string
	// Region is the wide-area region (continent/country), e.g. "eu".
	Region string
}

// CostModel prices a frame between two sites. Implementations must be
// safe for concurrent use.
type CostModel interface {
	// Classify returns the link class for a path.
	Classify(from, to Site) LinkClass
	// Cost returns the virtual delivery cost of n payload bytes.
	Cost(from, to Site, n int) time.Duration
}

// DefaultModel is a region-based cost model with year-2000-flavoured
// constants: milliseconds inside a site or campus, tens of milliseconds
// within a region, transcontinental latency and thin pipes across the
// wide area.
type DefaultModel struct {
	LoopbackLatency time.Duration
	LocalLatency    time.Duration
	RegionalLatency time.Duration
	WideAreaLatency time.Duration
	// Bandwidths in bytes per second.
	LocalBandwidth    float64
	RegionalBandwidth float64
	WideAreaBandwidth float64
}

// NewDefaultModel returns the model used by the experiments.
func NewDefaultModel() *DefaultModel {
	return &DefaultModel{
		LoopbackLatency:   100 * time.Microsecond,
		LocalLatency:      time.Millisecond,
		RegionalLatency:   15 * time.Millisecond,
		WideAreaLatency:   90 * time.Millisecond,
		LocalBandwidth:    10e6, // 10 MB/s LAN
		RegionalBandwidth: 2e6,  // 2 MB/s national backbone
		WideAreaBandwidth: 250e3,
	}
}

// Classify implements CostModel.
func (m *DefaultModel) Classify(from, to Site) LinkClass {
	switch {
	case from.ID == to.ID:
		return Loopback
	case from.Domain == to.Domain && from.Domain != "":
		return Local
	case from.Region == to.Region && from.Region != "":
		return Regional
	default:
		return WideArea
	}
}

// Cost implements CostModel.
func (m *DefaultModel) Cost(from, to Site, n int) time.Duration {
	switch m.Classify(from, to) {
	case Loopback:
		return m.LoopbackLatency
	case Local:
		return m.LocalLatency + bwTime(n, m.LocalBandwidth)
	case Regional:
		return m.RegionalLatency + bwTime(n, m.RegionalBandwidth)
	default:
		return m.WideAreaLatency + bwTime(n, m.WideAreaBandwidth)
	}
}

func bwTime(n int, bw float64) time.Duration {
	if bw <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// Stats is a snapshot of metered traffic.
type Stats struct {
	Frames map[LinkClass]int64
	Bytes  map[LinkClass]int64
}

// TotalBytes sums bytes over all link classes.
func (s Stats) TotalBytes() int64 {
	var t int64
	for _, b := range s.Bytes {
		t += b
	}
	return t
}

// TotalFrames sums frames over all link classes.
func (s Stats) TotalFrames() int64 {
	var t int64
	for _, f := range s.Frames {
		t += f
	}
	return t
}

// Sub returns s minus earlier, for measuring an interval.
func (s Stats) Sub(earlier Stats) Stats {
	d := Stats{Frames: map[LinkClass]int64{}, Bytes: map[LinkClass]int64{}}
	for c := Loopback; c <= WideArea; c++ {
		d.Frames[c] = s.Frames[c] - earlier.Frames[c]
		d.Bytes[c] = s.Bytes[c] - earlier.Bytes[c]
	}
	return d
}

// String renders the snapshot for experiment tables.
func (s Stats) String() string {
	var b strings.Builder
	for c := Loopback; c <= WideArea; c++ {
		if s.Frames[c] == 0 && s.Bytes[c] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s: %d frames / %d bytes; ", c, s.Frames[c], s.Bytes[c])
	}
	return strings.TrimSuffix(b.String(), "; ")
}

// Network is a simulated wide-area network implementing
// transport.Network. The zero value is not usable; call New.
type Network struct {
	model CostModel

	mu        sync.RWMutex
	sites     map[string]Site
	listeners map[string]*listener // "site:service" -> listener
	cut       map[[2]string]bool   // ordered (from, to): frames from->to fail
	down      map[string]bool
	conns     map[*conn]struct{} // established endpoints, for Crash
	faults    [WideArea + 1]LinkFaults

	seed    int64 // fault PRNG seed (SeedFaults)
	connSeq int64 // per-dial sequence, part of each conn's PRNG seed

	meterMu sync.Mutex
	frames  [WideArea + 1]int64
	bytes   [WideArea + 1]int64

	lost    atomic.Int64
	duped   atomic.Int64
	heldCnt atomic.Int64
}

var _ transport.Network = (*Network)(nil)

// New returns an empty simulated network using the given cost model
// (nil selects NewDefaultModel).
func New(model CostModel) *Network {
	if model == nil {
		model = NewDefaultModel()
	}
	return &Network{
		model:     model,
		sites:     make(map[string]Site),
		listeners: make(map[string]*listener),
		cut:       make(map[[2]string]bool),
		down:      make(map[string]bool),
		conns:     make(map[*conn]struct{}),
		seed:      1,
	}
}

// AddSite registers a site. Adding an existing ID overwrites its
// placement, which tests use to move sites between regions.
func (n *Network) AddSite(id, domain, region string) Site {
	s := Site{ID: id, Domain: domain, Region: region}
	n.mu.Lock()
	n.sites[id] = s
	n.mu.Unlock()
	return s
}

// Sites returns all registered sites sorted by ID.
func (n *Network) Sites() []Site {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]Site, 0, len(n.sites))
	for _, s := range n.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Site looks up a registered site.
func (n *Network) Site(id string) (Site, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s, ok := n.sites[id]
	return s, ok
}

// Classify exposes the cost model's link classification for experiments.
func (n *Network) Classify(fromSite, toSite string) (LinkClass, error) {
	n.mu.RLock()
	f, okF := n.sites[fromSite]
	t, okT := n.sites[toSite]
	n.mu.RUnlock()
	if !okF || !okT {
		return 0, fmt.Errorf("netsim: unknown site in pair %q -> %q", fromSite, toSite)
	}
	return n.model.Classify(f, t), nil
}

// SetDown marks a site as crashed (true) or recovered (false). Frames to
// or from a crashed site fail, and its listeners refuse connections.
// Established connections survive in a wedged state; use Crash to sever
// them too.
func (n *Network) SetDown(site string, down bool) {
	n.mu.Lock()
	n.down[site] = down
	n.mu.Unlock()
}

// Crash marks a site down and severs every established connection that
// touches it, the way a machine losing power kills its TCP sessions.
// Peers observe transport.ErrClosed on their next receive rather than a
// silent wedge.
func (n *Network) Crash(site string) {
	n.mu.Lock()
	n.down[site] = true
	victims := make([]*conn, 0, 8)
	for c := range n.conns {
		if c.local.ID == site || c.remote.ID == site {
			victims = append(victims, c)
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// Restart brings a crashed site back. Listeners registered before the
// crash still accept (the site returns with its network identity
// intact); recovering soft state — re-registration, lease renewal,
// re-subscription — is the protocols' job.
func (n *Network) Restart(site string) {
	n.SetDown(site, false)
}

// PartitionOneWay cuts connectivity from site a to site b only: a's
// dials and frames toward b fail, while b can still dial and send to a.
// This is the asymmetric partition of the chaos plane — a peer that is
// reachable for requests but whose responses vanish.
func (n *Network) PartitionOneWay(a, b string) {
	n.mu.Lock()
	n.cut[[2]string{a, b}] = true
	n.mu.Unlock()
}

// HealOneWay restores connectivity from site a to site b.
func (n *Network) HealOneWay(a, b string) {
	n.mu.Lock()
	delete(n.cut, [2]string{a, b})
	n.mu.Unlock()
}

// Partition cuts connectivity between two sites in both directions.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	n.cut[[2]string{a, b}] = true
	n.cut[[2]string{b, a}] = true
	n.mu.Unlock()
}

// Heal restores connectivity between two sites in both directions.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	delete(n.cut, [2]string{a, b})
	delete(n.cut, [2]string{b, a})
	n.mu.Unlock()
}

// HealAll removes every partition (one-way and symmetric) at once, the
// way a schedule ends a partition episode.
func (n *Network) HealAll() {
	n.mu.Lock()
	n.cut = make(map[[2]string]bool)
	n.mu.Unlock()
}

// Meter returns a snapshot of traffic counted since construction or the
// last ResetMeter.
func (n *Network) Meter() Stats {
	n.meterMu.Lock()
	defer n.meterMu.Unlock()
	s := Stats{Frames: map[LinkClass]int64{}, Bytes: map[LinkClass]int64{}}
	for c := Loopback; c <= WideArea; c++ {
		s.Frames[c] = n.frames[c]
		s.Bytes[c] = n.bytes[c]
	}
	return s
}

// ResetMeter zeroes the traffic counters.
func (n *Network) ResetMeter() {
	n.meterMu.Lock()
	for c := Loopback; c <= WideArea; c++ {
		n.frames[c] = 0
		n.bytes[c] = 0
	}
	n.meterMu.Unlock()
}

func (n *Network) record(c LinkClass, bytes int) {
	n.meterMu.Lock()
	n.frames[c]++
	n.bytes[c] += int64(bytes)
	n.meterMu.Unlock()
}

// SplitAddr splits a simulated address "site:service".
func SplitAddr(addr string) (site, service string, err error) {
	i := strings.LastIndex(addr, ":")
	if i <= 0 || i == len(addr)-1 {
		return "", "", fmt.Errorf("netsim: bad address %q (want site:service)", addr)
	}
	return addr[:i], addr[i+1:], nil
}

// Listen implements transport.Network. The address names a registered
// site and a service, e.g. "eu-nl-vu:gos".
func (n *Network) Listen(addr string) (transport.Listener, error) {
	site, _, err := SplitAddr(addr)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.sites[site]; !ok {
		return nil, fmt.Errorf("netsim: listen on unknown site %q", site)
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("netsim: address %q already in use", addr)
	}
	l := &listener{net: n, addr: addr, accept: make(chan *conn, 64), done: make(chan struct{})}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements transport.Network. from is the calling site's ID.
func (n *Network) Dial(from, addr string) (transport.Conn, error) {
	toSite, _, err := SplitAddr(addr)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	fromS, okFrom := n.sites[from]
	toS, okTo := n.sites[toSite]
	l := n.listeners[addr]
	downFrom := n.down[from]
	downTo := n.down[toSite]
	cut := n.cut[[2]string{from, toSite}]
	n.mu.RUnlock()

	if !okFrom {
		return nil, fmt.Errorf("netsim: dial from unknown site %q", from)
	}
	if !okTo {
		return nil, fmt.Errorf("%w: unknown site %q", transport.ErrUnreachable, toSite)
	}
	if downFrom || downTo || cut {
		return nil, fmt.Errorf("%w: %s -> %s", transport.ErrUnreachable, from, addr)
	}
	if l == nil {
		return nil, fmt.Errorf("%w: %s", transport.ErrNoListener, addr)
	}

	clientEnd, serverEnd := newConnPair(n, fromS, toS, from+":ephemeral", addr)
	select {
	case l.accept <- serverEnd:
		return clientEnd, nil
	case <-l.done:
		return nil, fmt.Errorf("%w: %s", transport.ErrNoListener, addr)
	}
}

func (n *Network) removeListener(addr string) {
	n.mu.Lock()
	delete(n.listeners, addr)
	n.mu.Unlock()
}

// linkState reports whether frames can currently flow from site a to
// site b, and the fault spec active on that link class when they can.
func (n *Network) linkState(a, b Site) (ok bool, class LinkClass, fl LinkFaults) {
	class = n.model.Classify(a, b)
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.down[a.ID] || n.down[b.ID] || n.cut[[2]string{a.ID, b.ID}] {
		return false, class, LinkFaults{}
	}
	return true, class, n.faults[class]
}

type listener struct {
	net    *Network
	addr   string
	accept chan *conn
	once   sync.Once
	done   chan struct{}
}

func (l *listener) Accept() (transport.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, transport.ErrClosed
	}
}

func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.removeListener(l.addr)
	})
	return nil
}

func (l *listener) Addr() string { return l.addr }

// frame is one delivered message with its virtual cost.
type frame struct {
	payload []byte
	cost    time.Duration
}

// conn is one endpoint of a simulated connection.
type conn struct {
	net        *Network
	local      Site
	remote     Site
	localAddr  string
	remoteAddr string
	out        chan frame // owned by peer: we send into it
	in         chan frame
	closeOnce  sync.Once
	closed     chan struct{}
	peerClosed chan struct{}

	// Fault state, lazily engaged when the link class carries faults.
	rngSeed int64
	faultMu sync.Mutex
	rng     *rand.Rand
	held    *frame      // one frame delayed by the reordering window
	hasHeld atomic.Bool // fast-path check so clean sends skip faultMu
}

func newConnPair(n *Network, dialer, target Site, dialerAddr, targetAddr string) (*conn, *conn) {
	aToB := make(chan frame, 256)
	bToA := make(chan frame, 256)
	closedA := make(chan struct{})
	closedB := make(chan struct{})
	a := &conn{
		net: n, local: dialer, remote: target,
		localAddr: dialerAddr, remoteAddr: targetAddr,
		out: aToB, in: bToA, closed: closedA, peerClosed: closedB,
	}
	b := &conn{
		net: n, local: target, remote: dialer,
		localAddr: targetAddr, remoteAddr: dialerAddr,
		out: bToA, in: aToB, closed: closedB, peerClosed: closedA,
	}
	n.mu.Lock()
	seq := n.connSeq
	n.connSeq++
	a.rngSeed = faultSeed(n.seed, dialerAddr, targetAddr, seq, 0)
	b.rngSeed = faultSeed(n.seed, dialerAddr, targetAddr, seq, 1)
	n.conns[a] = struct{}{}
	n.conns[b] = struct{}{}
	n.mu.Unlock()
	return a, b
}

// Send implements transport.Conn. The frame is priced and metered at
// send time; a copy of the payload is delivered so callers may reuse
// their buffers.
func (c *conn) Send(p []byte) error {
	if len(p) > transport.MaxFrame {
		return transport.ErrFrameSize
	}
	ok, class, fl := c.net.linkState(c.local, c.remote)
	if !ok {
		return fmt.Errorf("%w: %s -> %s", transport.ErrUnreachable, c.local.ID, c.remote.ID)
	}
	cost := c.net.model.Cost(c.local, c.remote, len(p))
	if !fl.isZero() || c.hasHeld.Load() {
		return c.sendFaulty(p, class, cost, fl)
	}
	return c.deliver(p, class, cost)
}

// SendVec implements transport.VecSender: the parts are assembled once
// into the pooled delivery buffer, so a vectored frame costs a single
// copy end to end where Send costs one on each side of the handoff.
// Faulty links fall back to the contiguous path — fault injection
// operates on whole frames and is far off the hot path.
func (c *conn) SendVec(parts [][]byte) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total > transport.MaxFrame {
		return transport.ErrFrameSize
	}
	ok, class, fl := c.net.linkState(c.local, c.remote)
	if !ok {
		return fmt.Errorf("%w: %s -> %s", transport.ErrUnreachable, c.local.ID, c.remote.ID)
	}
	cost := c.net.model.Cost(c.local, c.remote, total)
	cp := transport.GetFrame(total)
	off := 0
	for _, p := range parts {
		off += copy(cp[off:], p)
	}
	if !fl.isZero() || c.hasHeld.Load() {
		err := c.sendFaulty(cp, class, cost, fl)
		transport.PutFrame(cp)
		return err
	}
	return c.deliverOwned(cp, total, class, cost)
}

// deliver copies and enqueues one frame toward the peer.
func (c *conn) deliver(p []byte, class LinkClass, cost time.Duration) error {
	cp := transport.GetFrame(len(p))
	copy(cp, p)
	return c.deliverOwned(cp, len(p), class, cost)
}

// deliverOwned enqueues an already-pooled buffer toward the peer,
// taking ownership of cp.
func (c *conn) deliverOwned(cp []byte, n int, class LinkClass, cost time.Duration) error {
	select {
	case <-c.closed:
		transport.PutFrame(cp)
		return transport.ErrClosed
	case <-c.peerClosed:
		transport.PutFrame(cp)
		return transport.ErrClosed
	case c.out <- frame{payload: cp, cost: cost}:
		c.net.record(class, n)
		return nil
	}
}

// Recv implements transport.Conn.
func (c *conn) Recv() ([]byte, time.Duration, error) {
	select {
	case f := <-c.in:
		return f.payload, f.cost, nil
	case <-c.closed:
		return nil, 0, transport.ErrClosed
	case <-c.peerClosed:
		// Drain any frame that raced with the close.
		select {
		case f := <-c.in:
			return f.payload, f.cost, nil
		default:
			return nil, 0, transport.ErrClosed
		}
	}
}

// Close implements transport.Conn.
func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.net.mu.Lock()
		delete(c.net.conns, c)
		c.net.mu.Unlock()
		c.faultMu.Lock()
		if c.held != nil {
			transport.PutFrame(c.held.payload)
			c.held = nil
			c.hasHeld.Store(false)
		}
		c.faultMu.Unlock()
	})
	return nil
}

func (c *conn) LocalAddr() string  { return c.localAddr }
func (c *conn) RemoteAddr() string { return c.remoteAddr }

package netsim

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gdn/internal/transport"
)

// world builds a small three-region network used across the tests.
func world(t *testing.T) *Network {
	t.Helper()
	n := New(nil)
	n.AddSite("eu-nl-vu", "ams", "eu")
	n.AddSite("eu-nl-tud", "ams", "eu") // same metro domain as vu
	n.AddSite("eu-de-tub", "ber", "eu")
	n.AddSite("us-ca-ucb", "bay", "us")
	n.AddSite("ap-jp-ut", "tko", "ap")
	return n
}

func TestClassification(t *testing.T) {
	n := world(t)
	cases := []struct {
		a, b string
		want LinkClass
	}{
		{"eu-nl-vu", "eu-nl-vu", Loopback},
		{"eu-nl-vu", "eu-nl-tud", Local},
		{"eu-nl-vu", "eu-de-tub", Regional},
		{"eu-nl-vu", "us-ca-ucb", WideArea},
		{"us-ca-ucb", "ap-jp-ut", WideArea},
	}
	for _, c := range cases {
		got, err := n.Classify(c.a, c.b)
		if err != nil {
			t.Fatalf("Classify(%s,%s): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Classify(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestClassifyUnknownSite(t *testing.T) {
	n := world(t)
	if _, err := n.Classify("eu-nl-vu", "nowhere"); err == nil {
		t.Fatal("Classify with unknown site succeeded")
	}
}

func TestCostOrdering(t *testing.T) {
	m := NewDefaultModel()
	vu := Site{ID: "a", Domain: "d1", Region: "eu"}
	tud := Site{ID: "b", Domain: "d1", Region: "eu"}
	tub := Site{ID: "c", Domain: "d2", Region: "eu"}
	ucb := Site{ID: "d", Domain: "d3", Region: "us"}
	n := 1 << 10
	local := m.Cost(vu, tud, n)
	regional := m.Cost(vu, tub, n)
	wide := m.Cost(vu, ucb, n)
	loop := m.Cost(vu, vu, n)
	if !(loop < local && local < regional && regional < wide) {
		t.Fatalf("cost ordering broken: loop=%v local=%v regional=%v wide=%v", loop, local, regional, wide)
	}
}

func TestCostGrowsWithSize(t *testing.T) {
	m := NewDefaultModel()
	a := Site{ID: "a", Region: "eu"}
	b := Site{ID: "b", Region: "us"}
	small := m.Cost(a, b, 100)
	big := m.Cost(a, b, 1<<20)
	if big <= small {
		t.Fatalf("1MB (%v) not costlier than 100B (%v)", big, small)
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	n := world(t)
	l, err := n.Listen("us-ca-ucb:svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		p, _, err := c.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- c.Send(append([]byte("echo:"), p...))
	}()

	c, err := n.Dial("eu-nl-vu", "us-ca-ucb:svc")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	p, cost, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(p) != "echo:hello" {
		t.Fatalf("payload = %q", p)
	}
	if cost <= 0 {
		t.Fatal("wide-area frame had zero cost")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestVirtualCostReflectsDistance(t *testing.T) {
	n := world(t)
	recvCost := func(listenAddr, from string) time.Duration {
		l, err := n.Listen(listenAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func() {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			c.Send([]byte("x"))
		}()
		c, err := n.Dial(from, listenAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_, cost, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		return cost
	}
	local := recvCost("eu-nl-tud:a", "eu-nl-vu")
	regional := recvCost("eu-de-tub:a", "eu-nl-vu")
	wide := recvCost("us-ca-ucb:a", "eu-nl-vu")
	if !(local < regional && regional < wide) {
		t.Fatalf("cost not monotone with distance: %v %v %v", local, regional, wide)
	}
}

func TestMeterCountsByClass(t *testing.T) {
	n := world(t)
	l, _ := n.Listen("us-ca-ucb:svc")
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				if _, _, err := c.Recv(); err == nil {
					c.Send(make([]byte, 10))
				}
			}()
		}
	}()

	n.ResetMeter()
	c, err := n.Dial("eu-nl-vu", "us-ca-ucb:svc")
	if err != nil {
		t.Fatal(err)
	}
	c.Send(make([]byte, 100))
	c.Recv()
	c.Close()

	s := n.Meter()
	if s.Frames[WideArea] != 2 {
		t.Fatalf("wide-area frames = %d, want 2", s.Frames[WideArea])
	}
	if s.Bytes[WideArea] != 110 {
		t.Fatalf("wide-area bytes = %d, want 110", s.Bytes[WideArea])
	}
	if s.TotalFrames() != 2 {
		t.Fatalf("total frames = %d", s.TotalFrames())
	}
}

func TestMeterSub(t *testing.T) {
	n := world(t)
	l, _ := n.Listen("eu-nl-tud:svc")
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		if c != nil {
			c.Recv()
		}
	}()
	before := n.Meter()
	c, err := n.Dial("eu-nl-vu", "eu-nl-tud:svc")
	if err != nil {
		t.Fatal(err)
	}
	c.Send(make([]byte, 33))
	after := n.Meter()
	d := after.Sub(before)
	if d.Bytes[Local] != 33 || d.Frames[Local] != 1 {
		t.Fatalf("delta = %+v", d)
	}
	c.Close()
}

func TestDialErrors(t *testing.T) {
	n := world(t)
	if _, err := n.Dial("nowhere", "eu-nl-vu:svc"); err == nil {
		t.Error("dial from unknown site succeeded")
	}
	if _, err := n.Dial("eu-nl-vu", "nowhere:svc"); !errors.Is(err, transport.ErrUnreachable) {
		t.Errorf("dial to unknown site: %v", err)
	}
	if _, err := n.Dial("eu-nl-vu", "us-ca-ucb:svc"); !errors.Is(err, transport.ErrNoListener) {
		t.Errorf("dial with no listener: %v", err)
	}
	if _, err := n.Dial("eu-nl-vu", "bad-address"); err == nil {
		t.Error("dial to malformed address succeeded")
	}
}

func TestListenErrors(t *testing.T) {
	n := world(t)
	if _, err := n.Listen("nowhere:svc"); err == nil {
		t.Error("listen on unknown site succeeded")
	}
	if _, err := n.Listen("junk"); err == nil {
		t.Error("listen on malformed address succeeded")
	}
	l, err := n.Listen("eu-nl-vu:svc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("eu-nl-vu:svc"); err == nil {
		t.Error("double listen succeeded")
	}
	l.Close()
	// After close the address is free again.
	l2, err := n.Listen("eu-nl-vu:svc")
	if err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
	l2.Close()
}

func TestSiteDownBlocksTraffic(t *testing.T) {
	n := world(t)
	l, _ := n.Listen("us-ca-ucb:svc")
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			_ = c
		}
	}()

	c, err := n.Dial("eu-nl-vu", "us-ca-ucb:svc")
	if err != nil {
		t.Fatal(err)
	}
	n.SetDown("us-ca-ucb", true)
	if err := c.Send([]byte("x")); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("send to down site: %v", err)
	}
	if _, err := n.Dial("eu-nl-vu", "us-ca-ucb:svc"); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("dial to down site: %v", err)
	}
	n.SetDown("us-ca-ucb", false)
	if err := c.Send([]byte("x")); err != nil {
		t.Fatalf("send after recovery: %v", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := world(t)
	l, _ := n.Listen("ap-jp-ut:svc")
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()

	n.Partition("eu-nl-vu", "ap-jp-ut")
	if _, err := n.Dial("eu-nl-vu", "ap-jp-ut:svc"); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("dial across partition: %v", err)
	}
	// Partition is symmetric regardless of argument order.
	n.Heal("ap-jp-ut", "eu-nl-vu")
	if _, err := n.Dial("eu-nl-vu", "ap-jp-ut:svc"); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	// Other paths unaffected during partition.
	n.Partition("eu-nl-vu", "ap-jp-ut")
	l2, _ := n.Listen("us-ca-ucb:svc")
	defer l2.Close()
	go func() {
		if _, err := l2.Accept(); err != nil {
			return
		}
	}()
	if _, err := n.Dial("eu-nl-vu", "us-ca-ucb:svc"); err != nil {
		t.Fatalf("unrelated path affected by partition: %v", err)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	n := world(t)
	l, _ := n.Listen("eu-nl-vu:svc")
	defer l.Close()
	acc := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			acc <- c
		}
	}()
	c, err := n.Dial("eu-nl-tud", "eu-nl-vu:svc")
	if err != nil {
		t.Fatal(err)
	}
	server := <-acc

	recvDone := make(chan error, 1)
	go func() {
		_, _, err := server.Recv()
		recvDone <- err
	}()
	c.Close()
	select {
	case err := <-recvDone:
		if !errors.Is(err, transport.ErrClosed) {
			t.Fatalf("Recv after peer close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on peer close")
	}
}

func TestPayloadIsolation(t *testing.T) {
	n := world(t)
	l, _ := n.Listen("eu-nl-vu:svc")
	defer l.Close()
	got := make(chan []byte, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		p, _, _ := c.Recv()
		got <- p
	}()
	c, err := n.Dial("eu-nl-tud", "eu-nl-vu:svc")
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("original")
	c.Send(buf)
	copy(buf, "CLOBBER!")
	if string(<-got) != "original" {
		t.Fatal("sender buffer reuse corrupted delivered frame")
	}
}

func TestFrameSizeLimit(t *testing.T) {
	n := world(t)
	l, _ := n.Listen("eu-nl-vu:svc")
	defer l.Close()
	go func() {
		if _, err := l.Accept(); err != nil {
			return
		}
	}()
	c, err := n.Dial("eu-nl-tud", "eu-nl-vu:svc")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(make([]byte, transport.MaxFrame+1)); !errors.Is(err, transport.ErrFrameSize) {
		t.Fatalf("oversized frame: %v", err)
	}
}

func TestConcurrentConnections(t *testing.T) {
	n := world(t)
	l, _ := n.Listen("us-ca-ucb:svc")
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				for {
					p, _, err := c.Recv()
					if err != nil {
						return
					}
					if err := c.Send(p); err != nil {
						return
					}
				}
			}()
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.Dial("eu-nl-vu", "us-ca-ucb:svc")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				msg := []byte{byte(i), byte(j)}
				if err := c.Send(msg); err != nil {
					t.Error(err)
					return
				}
				p, _, err := c.Recv()
				if err != nil {
					t.Error(err)
					return
				}
				if p[0] != byte(i) || p[1] != byte(j) {
					t.Errorf("conn %d: echo mismatch", i)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestSitesSorted(t *testing.T) {
	n := world(t)
	sites := n.Sites()
	if len(sites) != 5 {
		t.Fatalf("len(Sites) = %d", len(sites))
	}
	for i := 1; i < len(sites); i++ {
		if sites[i-1].ID >= sites[i].ID {
			t.Fatal("Sites not sorted")
		}
	}
}

func TestLinkClassString(t *testing.T) {
	if Loopback.String() != "loopback" || WideArea.String() != "wide-area" {
		t.Fatal("LinkClass names wrong")
	}
	if LinkClass(99).String() == "" {
		t.Fatal("unknown LinkClass must still render")
	}
}

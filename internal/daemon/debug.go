package daemon

import (
	"flag"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"gdn/internal/obs"
)

// DebugMux returns the live-exposition HTTP mux every daemon can
// serve: the process-wide metrics registry as Prometheus text, the
// recent trace spans as JSON, and the standard pprof handlers.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/gdn/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, obs.Default)
	})
	mux.HandleFunc("/debug/gdn/traces", func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if n, err := strconv.Atoi(r.URL.Query().Get("limit")); err == nil && n > 0 {
			limit = n
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(obs.TracesJSON(limit)) //nolint:errcheck
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugFlags adds the -debug-addr flag shared by every daemon.
type DebugFlags struct {
	// Addr is the address the debug HTTP endpoint listens on; empty
	// disables it.
	Addr string
}

// Register installs the flag on fs.
func (df *DebugFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&df.Addr, "debug-addr", "",
		"serve /debug/gdn/metrics, /debug/gdn/traces and pprof on this address (empty: off)")
}

// Serve starts the debug endpoint when -debug-addr was given. It
// returns the bound address ("" when disabled) so callers can log it;
// errors are fatal because an operator who asked for the endpoint
// needs to know it is not there.
func (df *DebugFlags) Serve(logf func(string, ...any)) string {
	return df.serveMux(DebugMux(), logf)
}

// ServeWith serves extra handlers alongside the debug set on the same
// listener — the httpd daemon mounts its site mux this way.
func (df *DebugFlags) ServeWith(mux *http.ServeMux, logf func(string, ...any)) string {
	return df.serveMux(mux, logf)
}

func (df *DebugFlags) serveMux(mux *http.ServeMux, logf func(string, ...any)) string {
	if df.Addr == "" {
		return ""
	}
	ln, err := net.Listen("tcp", df.Addr)
	if err != nil {
		Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			logf("debug endpoint: %v", err)
		}
	}()
	return ln.Addr().String()
}

// Package daemon carries the assembly code shared by the cmd/ daemons:
// building a Globe runtime over real TCP from command-line flags, and
// waiting for termination signals. The daemons mirror the processes of
// the paper's Figure 3 — object servers, GDN HTTPDs, location and name
// service nodes, moderator tools — each as one binary on real sockets,
// while the simulated-network World in package gdn serves tests and
// experiments.
package daemon

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"gdn/internal/core"
	"gdn/internal/dns"
	"gdn/internal/gls"
	"gdn/internal/gns"
	"gdn/internal/pkgobj"
	"gdn/internal/repl"
	"gdn/internal/transport"
)

// Net is the transport every daemon runs on: real TCP with
// length-prefixed frames.
var Net transport.Network = transport.TCP{}

// ClientFlags configures access to the Globe services from flags.
type ClientFlags struct {
	// Site names this process's site (used for logs; TCP routing
	// ignores it).
	Site string
	// GLSLeaf is the comma-separated subnode address list of the leaf
	// directory node this process attaches to.
	GLSLeaf string
	// DNSRoots is the comma-separated root name-server address list.
	DNSRoots string
	// Zone is the GDN Zone.
	Zone string
}

// Register installs the flags on fs.
func (cf *ClientFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&cf.Site, "site", "local", "site name of this process")
	fs.StringVar(&cf.GLSLeaf, "gls", "", "comma-separated addresses of the leaf GLS directory node")
	fs.StringVar(&cf.DNSRoots, "dns", "", "comma-separated root DNS server addresses")
	fs.StringVar(&cf.Zone, "zone", "gdn.cs.vu.nl", "GDN Zone name")
}

// SplitList parses a comma-separated address list.
func SplitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Registry returns an implementation repository with the package
// semantics and every replication protocol installed.
func Registry() *core.Registry {
	reg := core.NewRegistry()
	pkgobj.Register(reg)
	repl.RegisterAll(reg)
	return reg
}

// Runtime assembles a Globe runtime from the flags. The name service
// is attached only when DNS roots are given.
func (cf *ClientFlags) Runtime() (*core.Runtime, error) {
	leaf := SplitList(cf.GLSLeaf)
	if len(leaf) == 0 {
		return nil, fmt.Errorf("daemon: -gls is required")
	}
	resolver := gls.NewResolver(Net, cf.Site, gls.Ref{Addrs: leaf})

	var names *gns.NameService
	if roots := SplitList(cf.DNSRoots); len(roots) > 0 {
		names = gns.NewNameService(dns.NewResolver(Net, cf.Site, roots), cf.Zone)
	}
	return core.NewRuntime(core.RuntimeConfig{
		Site:     cf.Site,
		Net:      Net,
		Resolver: resolver,
		Names:    names,
		Registry: Registry(),
		Logf:     Logf("runtime"),
	}), nil
}

// Logf returns a prefixed stderr logger.
func Logf(prefix string) func(string, ...any) {
	return func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, prefix+": "+format+"\n", args...)
	}
}

// WaitForSignal blocks until SIGINT or SIGTERM.
func WaitForSignal() os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return <-ch
}

// Fatal prints an error and exits.
func Fatal(err error) {
	fmt.Fprintln(os.Stderr, "fatal:", err)
	os.Exit(1)
}

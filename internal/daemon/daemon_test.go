package daemon

import (
	"flag"
	"reflect"
	"testing"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a:1", []string{"a:1"}},
		{"a:1,b:2", []string{"a:1", "b:2"}},
		{" a:1 , , b:2 ", []string{"a:1", "b:2"}},
	}
	for _, c := range cases {
		if got := SplitList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRegistryHasPackageAndProtocols(t *testing.T) {
	reg := Registry()
	if _, err := reg.NewSemantics("package/1"); err != nil {
		t.Fatal(err)
	}
	protos := reg.Protocols()
	want := map[string]bool{"clientserver": true, "masterslave": true, "active": true, "cache": true, "local": true}
	for _, p := range protos {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("missing protocols: %v (have %v)", want, protos)
	}
}

func TestClientFlagsRequireGLS(t *testing.T) {
	var cf ClientFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cf.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cf.Runtime(); err == nil {
		t.Fatal("runtime without -gls must fail")
	}
}

func TestClientFlagsRuntimeAssembly(t *testing.T) {
	var cf ClientFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cf.Register(fs)
	if err := fs.Parse([]string{"-gls", "h:1", "-dns", "h:2", "-site", "s"}); err != nil {
		t.Fatal(err)
	}
	rt, err := cf.Runtime()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Site() != "s" || rt.Names() == nil || rt.Resolver() == nil {
		t.Fatal("runtime assembly incomplete")
	}
}

package pkgobj

import (
	"fmt"
	"sort"

	"gdn/internal/core"
	"gdn/internal/wire"
)

// Version management: one of the two functional additions the paper
// plans for the GDN ("version-management facilities", §8). A moderator
// or maintainer tags the package's current files under a label;
// tagged versions are immutable snapshots that clients can list and
// read even after the working files move on — the "stable release
// stays downloadable while development continues" workflow of real
// software archives.

// Additional method names for version management.
const (
	MethodTagVersion   = "tagVersion"
	MethodListVersions = "listVersions"
	MethodGetFileAt    = "getFileAtVersion"
	MethodGetChunkAt   = "getFileChunkAtVersion"
	MethodDropVersion  = "dropVersion"
)

// ErrNoVersion is returned for unknown version labels.
var ErrNoVersion = fmt.Errorf("pkgobj: no such version")

// invokeVersion handles the version-management methods; it reports
// whether the method belonged to this extension.
func (p *Package) invokeVersion(inv core.Invocation, r *wire.Reader) (handled bool, out []byte, err error) {
	switch inv.Method {
	case MethodTagVersion:
		label := r.Str()
		if err := r.Done(); err != nil {
			return true, nil, err
		}
		return true, nil, p.tagVersion(label)
	case MethodListVersions:
		if err := r.Done(); err != nil {
			return true, nil, err
		}
		labels := make([]string, 0, len(p.versions))
		for l := range p.versions {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		w := wire.NewWriter(64)
		w.Count(len(labels))
		for _, l := range labels {
			w.Str(l)
		}
		return true, w.Bytes(), nil
	case MethodGetFileAt:
		label := r.Str()
		path := r.Str()
		if err := r.Done(); err != nil {
			return true, nil, err
		}
		v, ok := p.versions[label]
		if !ok {
			return true, nil, fmt.Errorf("%w: %q", ErrNoVersion, label)
		}
		f, ok := v.files[path]
		if !ok {
			return true, nil, fmt.Errorf("%w: %q at version %q", ErrNoFile, path, label)
		}
		if f.size > MaxInlineRead {
			return true, nil, fmt.Errorf("%w: %q@%q is %d bytes", ErrInlineRead, path, label, f.size)
		}
		out, err := f.read(p.st, 0, f.size)
		return true, out, err
	case MethodGetChunkAt:
		label := r.Str()
		path := r.Str()
		off := r.Int64()
		n := r.Int64()
		if err := r.Done(); err != nil {
			return true, nil, err
		}
		v, ok := p.versions[label]
		if !ok {
			return true, nil, fmt.Errorf("%w: %q", ErrNoVersion, label)
		}
		f, ok := v.files[path]
		if !ok {
			return true, nil, fmt.Errorf("%w: %q at version %q", ErrNoFile, path, label)
		}
		out, err := f.read(p.st, off, n)
		return true, out, err
	case MethodDropVersion:
		label := r.Str()
		if err := r.Done(); err != nil {
			return true, nil, err
		}
		v, ok := p.versions[label]
		if !ok {
			return true, nil, fmt.Errorf("%w: %q", ErrNoVersion, label)
		}
		for _, f := range v.files {
			p.st.Release(f.refs())
		}
		delete(p.versions, label)
		return true, nil, nil
	default:
		return false, nil, nil
	}
}

// tagVersion snapshots the current files under a label. Snapshots are
// manifests pinning their chunks in the content store, so a version
// of a multi-gigabyte package that shares most content with the
// working files costs almost nothing — content addressing is the
// version store. Re-tagging an existing label is refused: published
// versions are immutable.
func (p *Package) tagVersion(label string) error {
	if label == "" {
		return fmt.Errorf("pkgobj: empty version label")
	}
	if _, taken := p.versions[label]; taken {
		return fmt.Errorf("pkgobj: version %q already exists", label)
	}
	snap := version{files: make(map[string]*file, len(p.files))}
	for path, f := range p.files {
		c := f.clone()
		if err := p.st.Retain(c.refs()); err != nil {
			// Roll back the pins taken so far.
			for _, prev := range snap.files {
				p.st.Release(prev.refs())
			}
			return err
		}
		snap.files[path] = c
	}
	if p.versions == nil {
		p.versions = make(map[string]version)
	}
	p.versions[label] = snap
	return nil
}

// encodeVersions appends the versions section to a state encoding.
func (p *Package) encodeVersions(w *wire.Writer) {
	labels := make([]string, 0, len(p.versions))
	for l := range p.versions {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	w.Count(len(labels))
	for _, label := range labels {
		w.Str(label)
		v := p.versions[label]
		paths := make([]string, 0, len(v.files))
		for path := range v.files {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		w.Count(len(paths))
		for _, path := range paths {
			encodeManifest(w, path, v.files[path])
		}
	}
}

// decodeVersions reads the versions section of a state encoding.
func decodeVersions(r *wire.Reader) (map[string]version, error) {
	n := r.Count()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n == 0 {
		return nil, nil
	}
	out := make(map[string]version, n)
	for i := 0; i < n; i++ {
		label := r.Str()
		nf := r.Count()
		if r.Err() != nil {
			return nil, r.Err()
		}
		v := version{files: make(map[string]*file, nf)}
		for j := 0; j < nf; j++ {
			path, f, err := decodeManifest(r)
			if err != nil {
				return nil, err
			}
			// Version paths face the same consumers as live paths
			// (file systems, URLs); hostile state must not smuggle
			// malformed ones in through a snapshot.
			if !validPath(path) {
				return nil, fmt.Errorf("%w: %q in version %q", ErrBadPath, path, label)
			}
			v.files[path] = f
		}
		out[label] = v
	}
	return out, r.Err()
}

// --- typed stub methods ------------------------------------------------

// TagVersion snapshots the package's current files under an immutable
// label.
func (s *Stub) TagVersion(label string) error {
	w := wire.NewWriter(4 + len(label))
	w.Str(label)
	_, err := s.invoke(MethodTagVersion, true, w.Bytes())
	return err
}

// ListVersions returns the tagged version labels, sorted.
func (s *Stub) ListVersions() ([]string, error) {
	out, err := s.invoke(MethodListVersions, false, nil)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(out)
	n := r.Count()
	if r.Err() != nil {
		return nil, r.Err()
	}
	labels := make([]string, 0, n)
	for i := 0; i < n; i++ {
		labels = append(labels, r.Str())
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return labels, nil
}

// GetFileAtVersion reads a file's content as it was when the version
// was tagged. Versioned files above MaxInlineRead are assembled from
// chunk reads, so tagged content has no size ceiling either.
func (s *Stub) GetFileAtVersion(label, path string) ([]byte, error) {
	w := wire.NewWriter(8 + len(label) + len(path))
	w.Str(label)
	w.Str(path)
	out, err := s.invoke(MethodGetFileAt, false, w.Bytes())
	if isInlineRead(err) {
		return s.getVersionChunked(label, path)
	}
	return out, err
}

// getVersionChunked reassembles a large versioned file chunk by chunk.
func (s *Stub) getVersionChunked(label, path string) ([]byte, error) {
	var out []byte
	for off := int64(0); ; {
		w := wire.NewWriter(24 + len(label) + len(path))
		w.Str(label)
		w.Str(path)
		w.Int64(off)
		w.Int64(streamChunkSize)
		chunk, err := s.invoke(MethodGetChunkAt, false, w.Bytes())
		if err != nil {
			return nil, err
		}
		if len(chunk) == 0 {
			return out, nil
		}
		out = append(out, chunk...)
		off += int64(len(chunk))
	}
}

// DropVersion removes a tagged version.
func (s *Stub) DropVersion(label string) error {
	w := wire.NewWriter(4 + len(label))
	w.Str(label)
	_, err := s.invoke(MethodDropVersion, true, w.Bytes())
	return err
}

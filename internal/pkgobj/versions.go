package pkgobj

import (
	"fmt"
	"sort"

	"gdn/internal/core"
	"gdn/internal/wire"
)

// Version management: one of the two functional additions the paper
// plans for the GDN ("version-management facilities", §8). A moderator
// or maintainer tags the package's current files under a label;
// tagged versions are immutable snapshots that clients can list and
// read even after the working files move on — the "stable release
// stays downloadable while development continues" workflow of real
// software archives.

// Additional method names for version management.
const (
	MethodTagVersion   = "tagVersion"
	MethodListVersions = "listVersions"
	MethodGetFileAt    = "getFileAtVersion"
	MethodDropVersion  = "dropVersion"
)

// ErrNoVersion is returned for unknown version labels.
var ErrNoVersion = fmt.Errorf("pkgobj: no such version")

// version is one immutable snapshot: path → content.
type version struct {
	files map[string][]byte
}

// invokeVersion handles the version-management methods; it reports
// whether the method belonged to this extension.
func (p *Package) invokeVersion(inv core.Invocation, r *wire.Reader) (handled bool, out []byte, err error) {
	switch inv.Method {
	case MethodTagVersion:
		label := r.Str()
		if err := r.Done(); err != nil {
			return true, nil, err
		}
		return true, nil, p.tagVersion(label)
	case MethodListVersions:
		if err := r.Done(); err != nil {
			return true, nil, err
		}
		labels := make([]string, 0, len(p.versions))
		for l := range p.versions {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		w := wire.NewWriter(64)
		w.Count(len(labels))
		for _, l := range labels {
			w.Str(l)
		}
		return true, w.Bytes(), nil
	case MethodGetFileAt:
		label := r.Str()
		path := r.Str()
		if err := r.Done(); err != nil {
			return true, nil, err
		}
		v, ok := p.versions[label]
		if !ok {
			return true, nil, fmt.Errorf("%w: %q", ErrNoVersion, label)
		}
		content, ok := v.files[path]
		if !ok {
			return true, nil, fmt.Errorf("%w: %q at version %q", ErrNoFile, path, label)
		}
		return true, append([]byte(nil), content...), nil
	case MethodDropVersion:
		label := r.Str()
		if err := r.Done(); err != nil {
			return true, nil, err
		}
		if _, ok := p.versions[label]; !ok {
			return true, nil, fmt.Errorf("%w: %q", ErrNoVersion, label)
		}
		delete(p.versions, label)
		return true, nil, nil
	default:
		return false, nil, nil
	}
}

// tagVersion snapshots the current files under a label. Re-tagging an
// existing label is refused: published versions are immutable.
func (p *Package) tagVersion(label string) error {
	if label == "" {
		return fmt.Errorf("pkgobj: empty version label")
	}
	if _, taken := p.versions[label]; taken {
		return fmt.Errorf("pkgobj: version %q already exists", label)
	}
	snap := version{files: make(map[string][]byte, len(p.files))}
	for path, f := range p.files {
		snap.files[path] = f.read(0, f.size)
	}
	if p.versions == nil {
		p.versions = make(map[string]version)
	}
	p.versions[label] = snap
	return nil
}

// encodeVersions appends the versions section to a state encoding.
func (p *Package) encodeVersions(w *wire.Writer) {
	labels := make([]string, 0, len(p.versions))
	for l := range p.versions {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	w.Count(len(labels))
	for _, label := range labels {
		w.Str(label)
		v := p.versions[label]
		paths := make([]string, 0, len(v.files))
		for path := range v.files {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		w.Count(len(paths))
		for _, path := range paths {
			w.Str(path)
			w.Bytes32(v.files[path])
		}
	}
}

// decodeVersions reads the versions section of a state encoding.
func decodeVersions(r *wire.Reader) (map[string]version, error) {
	n := r.Count()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n == 0 {
		return nil, nil
	}
	out := make(map[string]version, n)
	for i := 0; i < n; i++ {
		label := r.Str()
		nf := r.Count()
		if r.Err() != nil {
			return nil, r.Err()
		}
		v := version{files: make(map[string][]byte, nf)}
		for j := 0; j < nf; j++ {
			path := r.Str()
			v.files[path] = append([]byte(nil), r.Bytes32()...)
		}
		out[label] = v
	}
	return out, r.Err()
}

// --- typed stub methods ------------------------------------------------

// TagVersion snapshots the package's current files under an immutable
// label.
func (s *Stub) TagVersion(label string) error {
	w := wire.NewWriter(4 + len(label))
	w.Str(label)
	_, err := s.invoke(MethodTagVersion, true, w.Bytes())
	return err
}

// ListVersions returns the tagged version labels, sorted.
func (s *Stub) ListVersions() ([]string, error) {
	out, err := s.invoke(MethodListVersions, false, nil)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(out)
	n := r.Count()
	if r.Err() != nil {
		return nil, r.Err()
	}
	labels := make([]string, 0, n)
	for i := 0; i < n; i++ {
		labels = append(labels, r.Str())
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return labels, nil
}

// GetFileAtVersion reads a file's content as it was when the version
// was tagged.
func (s *Stub) GetFileAtVersion(label, path string) ([]byte, error) {
	w := wire.NewWriter(8 + len(label) + len(path))
	w.Str(label)
	w.Str(path)
	return s.invoke(MethodGetFileAt, false, w.Bytes())
}

// DropVersion removes a tagged version.
func (s *Stub) DropVersion(label string) error {
	w := wire.NewWriter(4 + len(label))
	w.Str(label)
	_, err := s.invoke(MethodDropVersion, true, w.Bytes())
	return err
}

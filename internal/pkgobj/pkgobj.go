// Package pkgobj implements the package DSO: the semantics subobject
// holding one free-software package — "one or more files" with a
// unique name, possibly very large (paper §2) — plus the typed stub
// that plays the control subobject for it.
//
// The semantics subobject is written with no knowledge of distribution
// or replication, exactly as §3.3 prescribes: it sees only marshalled
// invocations and marshalled state. Any replication protocol from
// internal/repl can host it, which is what lets moderators assign
// packages differentiated replication scenarios.
//
// File contents are stored in fixed-size chunks so large files stream
// through GetFileChunk without materializing in one message, and every
// file carries a SHA-256 digest so integrity is checkable end to end
// (paper §6.1: "attackers should not be able to violate the integrity
// of the software being distributed").
package pkgobj

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"

	"gdn/internal/core"
	"gdn/internal/wire"
)

// Impl is the implementation identifier under which the package
// semantics is registered in implementation repositories.
const Impl = "package/1"

// DefaultChunkSize is the storage chunk size; GetFileChunk reads are
// independent of it.
const DefaultChunkSize = 256 << 10

// MaxFileSize bounds one file so its content fits protocol messages.
// The paper's packages "can be very large"; larger collections split
// across files, and files beyond this bound would need a chunked
// transfer protocol the GDN reads already provide.
const MaxFileSize = 15 << 20

// Method names of the package DSO interface.
const (
	MethodAddFile      = "addFile"
	MethodAppendFile   = "appendFile"
	MethodRemoveFile   = "removeFile"
	MethodListContents = "listContents"
	MethodGetFile      = "getFileContents"
	MethodGetChunk     = "getFileChunk"
	MethodStat         = "stat"
	MethodSetMeta      = "setMeta"
	MethodGetMeta      = "getMeta"
)

// Errors reported by the package semantics.
var (
	ErrNoFile   = errors.New("pkgobj: no such file in package")
	ErrTooLarge = errors.New("pkgobj: file exceeds size bound")
	ErrBadPath  = errors.New("pkgobj: malformed file path")
)

// FileInfo describes one file in a package.
type FileInfo struct {
	// Path is the file's name within the package, e.g. "src/gcc.tar".
	Path string
	// Size is the content length in bytes.
	Size int64
	// Digest is the SHA-256 of the content.
	Digest [sha256.Size]byte
}

func (fi FileInfo) encode(w *wire.Writer) {
	w.Str(fi.Path)
	w.Int64(fi.Size)
	w.Bytes32(fi.Digest[:])
}

func decodeFileInfo(r *wire.Reader) FileInfo {
	var fi FileInfo
	fi.Path = r.Str()
	fi.Size = r.Int64()
	copy(fi.Digest[:], r.Bytes32())
	return fi
}

// file is the stored representation: content chunks plus a cached
// digest recomputed on modification.
type file struct {
	size   int64
	digest [sha256.Size]byte
	chunks [][]byte
}

func (f *file) info(path string) FileInfo {
	return FileInfo{Path: path, Size: f.size, Digest: f.digest}
}

func (f *file) rehash() {
	h := sha256.New()
	for _, c := range f.chunks {
		h.Write(c)
	}
	copy(f.digest[:], h.Sum(nil))
}

// read copies [off, off+n) of the content; short at EOF.
func (f *file) read(off, n int64) []byte {
	if off >= f.size || n <= 0 {
		return nil
	}
	if off+n > f.size {
		n = f.size - off
	}
	out := make([]byte, 0, n)
	pos := int64(0)
	for _, c := range f.chunks {
		clen := int64(len(c))
		if pos+clen <= off {
			pos += clen
			continue
		}
		start := int64(0)
		if off > pos {
			start = off - pos
		}
		end := clen
		if pos+end > off+n {
			end = off + n - pos
		}
		out = append(out, c[start:end]...)
		pos += clen
		if int64(len(out)) >= n {
			break
		}
	}
	return out
}

// Package is the package DSO semantics subobject. The zero value is
// not usable; call New. It is not safe for concurrent use — the
// framework serializes access (core.NewLocalExec).
type Package struct {
	meta      map[string]string
	files     map[string]*file
	versions  map[string]version
	chunkSize int
}

var _ core.Semantics = (*Package)(nil)

// New returns an empty package.
func New() *Package {
	return &Package{
		meta:      make(map[string]string),
		files:     make(map[string]*file),
		chunkSize: DefaultChunkSize,
	}
}

// Register installs the package implementation in a registry.
func Register(reg *core.Registry) {
	reg.RegisterSemantics(Impl, func() core.Semantics { return New() })
}

// validPath accepts slash-separated relative paths without empty or
// dot-only components — server-side sanitation so a hostile path
// cannot confuse consumers that map package files onto file systems or
// URLs (paper §6.1 hardening).
func validPath(p string) bool {
	if p == "" || len(p) > 4096 || p[0] == '/' {
		return false
	}
	start := 0
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			seg := p[start:i]
			if seg == "" || seg == "." || seg == ".." {
				return false
			}
			start = i + 1
		}
	}
	return true
}

// Invoke implements core.Semantics by dispatching marshalled methods.
func (p *Package) Invoke(inv core.Invocation) ([]byte, error) {
	r := wire.NewReader(inv.Args)
	if handled, out, err := p.invokeVersion(inv, r); handled {
		return out, err
	}
	switch inv.Method {
	case MethodAddFile:
		path := r.Str()
		data := r.Bytes32()
		if err := r.Done(); err != nil {
			return nil, err
		}
		return nil, p.addFile(path, data, false)
	case MethodAppendFile:
		path := r.Str()
		data := r.Bytes32()
		if err := r.Done(); err != nil {
			return nil, err
		}
		return nil, p.addFile(path, data, true)
	case MethodRemoveFile:
		path := r.Str()
		if err := r.Done(); err != nil {
			return nil, err
		}
		if _, ok := p.files[path]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoFile, path)
		}
		delete(p.files, path)
		return nil, nil
	case MethodListContents:
		if err := r.Done(); err != nil {
			return nil, err
		}
		return p.listContents(), nil
	case MethodGetFile:
		path := r.Str()
		if err := r.Done(); err != nil {
			return nil, err
		}
		f, ok := p.files[path]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoFile, path)
		}
		return f.read(0, f.size), nil
	case MethodGetChunk:
		path := r.Str()
		off := r.Int64()
		n := r.Int64()
		if err := r.Done(); err != nil {
			return nil, err
		}
		f, ok := p.files[path]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoFile, path)
		}
		return f.read(off, n), nil
	case MethodStat:
		path := r.Str()
		if err := r.Done(); err != nil {
			return nil, err
		}
		f, ok := p.files[path]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoFile, path)
		}
		w := wire.NewWriter(64)
		f.info(path).encode(w)
		return w.Bytes(), nil
	case MethodSetMeta:
		key := r.Str()
		val := r.Str()
		if err := r.Done(); err != nil {
			return nil, err
		}
		if val == "" {
			delete(p.meta, key)
		} else {
			p.meta[key] = val
		}
		return nil, nil
	case MethodGetMeta:
		key := r.Str()
		if err := r.Done(); err != nil {
			return nil, err
		}
		if key != "" {
			return []byte(p.meta[key]), nil
		}
		return p.encodeMeta(), nil
	default:
		return nil, fmt.Errorf("pkgobj: unknown method %q", inv.Method)
	}
}

func (p *Package) addFile(path string, data []byte, appendTo bool) error {
	if !validPath(path) {
		return fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	f := p.files[path]
	if f == nil || !appendTo {
		f = &file{}
		p.files[path] = f
	}
	if f.size+int64(len(data)) > MaxFileSize {
		return fmt.Errorf("%w: %q would reach %d bytes", ErrTooLarge, path, f.size+int64(len(data)))
	}
	for len(data) > 0 {
		n := p.chunkSize
		if n > len(data) {
			n = len(data)
		}
		chunk := make([]byte, n)
		copy(chunk, data[:n])
		f.chunks = append(f.chunks, chunk)
		f.size += int64(n)
		data = data[n:]
	}
	f.rehash()
	return nil
}

func (p *Package) listContents() []byte {
	paths := make([]string, 0, len(p.files))
	for path := range p.files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	w := wire.NewWriter(64 * len(paths))
	w.Count(len(paths))
	for _, path := range paths {
		p.files[path].info(path).encode(w)
	}
	return w.Bytes()
}

func (p *Package) encodeMeta() []byte {
	keys := make([]string, 0, len(p.meta))
	for k := range p.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := wire.NewWriter(64)
	w.Count(len(keys))
	for _, k := range keys {
		w.Str(k)
		w.Str(p.meta[k])
	}
	return w.Bytes()
}

// MarshalState implements core.Semantics. The encoding is canonical
// (sorted, content re-chunked on load) so replicas converge to
// byte-identical state regardless of operation history.
func (p *Package) MarshalState() ([]byte, error) {
	w := wire.NewWriter(1024)
	w.Uint32(uint32(p.chunkSize))
	metaBytes := p.encodeMeta()
	w.Bytes32(metaBytes)

	paths := make([]string, 0, len(p.files))
	for path := range p.files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	w.Count(len(paths))
	for _, path := range paths {
		f := p.files[path]
		w.Str(path)
		w.Bytes32(f.read(0, f.size))
	}
	p.encodeVersions(w)
	return w.Bytes(), nil
}

// UnmarshalState implements core.Semantics.
func (p *Package) UnmarshalState(b []byte) error {
	r := wire.NewReader(b)
	chunkSize := int(r.Uint32())
	metaBytes := r.Bytes32()
	count := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	if chunkSize <= 0 {
		return fmt.Errorf("pkgobj: bad chunk size %d in state", chunkSize)
	}

	mr := wire.NewReader(metaBytes)
	nMeta := mr.Count()
	meta := make(map[string]string, nMeta)
	for i := 0; i < nMeta; i++ {
		k := mr.Str()
		meta[k] = mr.Str()
	}
	if err := mr.Done(); err != nil {
		return err
	}

	next := &Package{meta: meta, files: make(map[string]*file, count), chunkSize: chunkSize}
	for i := 0; i < count; i++ {
		path := r.Str()
		data := r.Bytes32()
		if r.Err() != nil {
			return r.Err()
		}
		if err := next.addFile(path, data, false); err != nil {
			return err
		}
	}
	versions, err := decodeVersions(r)
	if err != nil {
		return err
	}
	next.versions = versions
	if err := r.Done(); err != nil {
		return err
	}
	*p = *next
	return nil
}

// Files returns the number of files; tests and checkpoint logs use it.
func (p *Package) Files() int { return len(p.files) }

// TotalSize sums all file sizes.
func (p *Package) TotalSize() int64 {
	var total int64
	for _, f := range p.files {
		total += f.size
	}
	return total
}

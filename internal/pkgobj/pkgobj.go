// Package pkgobj implements the package DSO: the semantics subobject
// holding one free-software package — "one or more files" with a
// unique name, possibly very large (paper §2) — plus the typed stub
// that plays the control subobject for it.
//
// The semantics subobject is written with no knowledge of distribution
// or replication, exactly as §3.3 prescribes: it sees only marshalled
// invocations and marshalled state. Any replication protocol from
// internal/repl can host it, which is what lets moderators assign
// packages differentiated replication scenarios.
//
// File contents live in a content-addressed chunk store
// (internal/store): a file is a manifest of SHA-256 chunk refs plus a
// whole-content digest, so package state is small no matter how large
// the content, identical content is stored once, state transfer ships
// only the chunks a receiver is missing, and integrity is checkable
// end to end (paper §6.1: "attackers should not be able to violate
// the integrity of the software being distributed"). There is no file
// size ceiling: reads and bulk transfers are chunked, so nothing ever
// materializes content-sized buffers on the wire.
package pkgobj

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"sort"

	"gdn/internal/core"
	"gdn/internal/store"
	"gdn/internal/wire"
)

// Impl is the implementation identifier under which the package
// semantics is registered in implementation repositories.
const Impl = "package/1"

// DefaultChunkSize is the storage chunk size; GetFileChunk reads are
// independent of it.
const DefaultChunkSize = 256 << 10

// Method names of the package DSO interface.
const (
	MethodAddFile      = "addFile"
	MethodAddManifest  = "addManifest"
	MethodAppendFile   = "appendFile"
	MethodRemoveFile   = "removeFile"
	MethodListContents = "listContents"
	MethodGetFile      = "getFileContents"
	MethodGetChunk     = "getFileChunk"
	MethodStat         = "stat"
	MethodSetMeta      = "setMeta"
	MethodGetMeta      = "getMeta"
)

// MetaModified is the metadata key conventionally holding the time of
// the package's last moderator change, as decimal Unix seconds. The
// moderator tool stamps it on create and update; replicated with the
// rest of the state, every replica agrees on it, and the GDN HTTPD
// serves it as Last-Modified.
const MetaModified = "gdn.modified"

// MaxInlineRead bounds MethodGetFile/MethodGetFileAt responses: a
// whole-content read materializes the file in one protocol message,
// which must stay under the wire field limit. Storage itself has no
// ceiling — larger files are read chunked or streamed.
const MaxInlineRead = 8 << 20

// Errors reported by the package semantics.
var (
	ErrNoFile  = errors.New("pkgobj: no such file in package")
	ErrBadPath = errors.New("pkgobj: malformed file path")
	// ErrInlineRead rejects a whole-content read of a file too large
	// for one protocol message; callers stream or read chunked.
	ErrInlineRead = errors.New("pkgobj: file exceeds whole-content read bound")
)

// FileInfo describes one file in a package.
type FileInfo struct {
	// Path is the file's name within the package, e.g. "src/gcc.tar".
	Path string
	// Size is the content length in bytes.
	Size int64
	// Digest is the SHA-256 of the content.
	Digest [sha256.Size]byte
}

func (fi FileInfo) encode(w *wire.Writer) {
	w.Str(fi.Path)
	w.Int64(fi.Size)
	w.Bytes32(fi.Digest[:])
}

func decodeFileInfo(r *wire.Reader) FileInfo {
	var fi FileInfo
	fi.Path = r.Str()
	fi.Size = r.Int64()
	copy(fi.Digest[:], r.Bytes32())
	return fi
}

// file is the stored representation: a chunk manifest plus the
// whole-content digest. h carries the running digest state so appends
// are O(appended bytes); it is rebuilt lazily after a state install.
type file struct {
	size   int64
	digest [sha256.Size]byte
	chunks []store.Chunk
	h      hash.Hash
}

func (f *file) info(path string) FileInfo {
	return FileInfo{Path: path, Size: f.size, Digest: f.digest}
}

func (f *file) refs() []store.Ref {
	out := make([]store.Ref, len(f.chunks))
	for i, c := range f.chunks {
		out[i] = c.Ref
	}
	return out
}

// clone copies the manifest (not the hash state); tagged versions
// snapshot files with it.
func (f *file) clone() *file {
	return &file{
		size:   f.size,
		digest: f.digest,
		chunks: append([]store.Chunk(nil), f.chunks...),
	}
}

// manifest views the file as a core.Manifest (no retention).
func (f *file) manifest() core.Manifest {
	return core.Manifest{Chunks: f.chunks, Size: f.size, Digest: f.digest}
}

// read copies [off, off+n) of the content out of the store; short at
// EOF.
func (f *file) read(st *store.Store, off, n int64) ([]byte, error) {
	if off >= f.size || n <= 0 {
		return nil, nil
	}
	if off+n > f.size {
		n = f.size - off
	}
	out := make([]byte, 0, n)
	err := f.manifest().WalkRange(st, off, n, func(p []byte) error {
		out = append(out, p...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// rebuildHash reconstructs the running digest state from stored
// content; needed before the first append after a state install.
func (f *file) rebuildHash(st *store.Store) error {
	h := sha256.New()
	for _, c := range f.chunks {
		data, err := st.Get(c.Ref)
		if err != nil {
			return err
		}
		h.Write(data)
	}
	f.h = h
	return nil
}

// version is one immutable tagged snapshot: path → manifest.
type version struct {
	files map[string]*file
}

// Package is the package DSO semantics subobject. The zero value is
// not usable; call New. It is not safe for concurrent use — the
// framework serializes access (core.NewLocalExec).
type Package struct {
	meta      map[string]string
	files     map[string]*file
	versions  map[string]version
	chunkSize int
	st        *store.Store
}

var (
	_ core.Semantics    = (*Package)(nil)
	_ core.ChunkStored  = (*Package)(nil)
	_ core.BulkSource   = (*Package)(nil)
	_ core.ChunkedState = (*Package)(nil)
)

// New returns an empty package backed by its own private memory
// store. Hosting infrastructure re-homes it onto a shared store with
// UseStore before seeding state.
func New() *Package {
	return &Package{
		meta:      make(map[string]string),
		files:     make(map[string]*file),
		chunkSize: DefaultChunkSize,
		st:        store.Mem(),
	}
}

// Register installs the package implementation in a registry.
func Register(reg *core.Registry) {
	reg.RegisterSemantics(Impl, func() core.Semantics { return New() })
}

// Store returns the chunk store backing this package's content.
func (p *Package) Store() *store.Store { return p.st }

// UseStore implements core.ChunkStored: it re-homes the package onto
// st, migrating any content already stored (normally none — the
// runtime injects stores into freshly constructed semantics).
func (p *Package) UseStore(st *store.Store) {
	if st == nil || st == p.st {
		return
	}
	migrate := func(f *file) {
		for _, c := range f.chunks {
			if data, err := p.st.Get(c.Ref); err == nil {
				st.PutPinned(data) //nolint:errcheck
			}
		}
	}
	for _, f := range p.files {
		migrate(f)
		f.h = nil
	}
	for _, v := range p.versions {
		for _, f := range v.files {
			migrate(f)
		}
	}
	p.releaseAll()
	p.st = st
}

// releaseAll drops every pin this package holds in its store.
func (p *Package) releaseAll() {
	for _, f := range p.files {
		p.st.Release(f.refs())
	}
	for _, v := range p.versions {
		for _, f := range v.files {
			p.st.Release(f.refs())
		}
	}
}

// ReleaseStored drops the package's store pins; the local
// representative calls it on Close so shared stores reclaim (or age
// out) content of replicas that no longer exist.
func (p *Package) ReleaseStored() {
	p.releaseAll()
	p.files = make(map[string]*file)
	p.versions = nil
}

// FileManifest implements core.BulkSource. The returned manifest's
// chunks are retained on the caller's behalf; the caller must Release
// them when its read completes.
func (p *Package) FileManifest(path string) (core.Manifest, error) {
	f, ok := p.files[path]
	if !ok {
		return core.Manifest{}, fmt.Errorf("%w: %q", ErrNoFile, path)
	}
	m := core.Manifest{
		Chunks: append([]store.Chunk(nil), f.chunks...),
		Size:   f.size,
		Digest: f.digest,
	}
	if err := p.st.Retain(m.Refs()); err != nil {
		return core.Manifest{}, err
	}
	return m, nil
}

// validPath accepts slash-separated relative paths without empty or
// dot-only components — server-side sanitation so a hostile path
// cannot confuse consumers that map package files onto file systems or
// URLs (paper §6.1 hardening).
func validPath(p string) bool {
	if p == "" || len(p) > 4096 || p[0] == '/' {
		return false
	}
	start := 0
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			seg := p[start:i]
			if seg == "" || seg == "." || seg == ".." {
				return false
			}
			start = i + 1
		}
	}
	return true
}

// Invoke implements core.Semantics by dispatching marshalled methods.
func (p *Package) Invoke(inv core.Invocation) ([]byte, error) {
	r := wire.NewReader(inv.Args)
	if handled, out, err := p.invokeVersion(inv, r); handled {
		return out, err
	}
	switch inv.Method {
	case MethodAddFile:
		path := r.Str()
		data := r.Bytes32()
		if err := r.Done(); err != nil {
			return nil, err
		}
		return nil, p.addFile(path, data, false)
	case MethodAddManifest:
		path, f, err := decodeManifest(r)
		if err != nil {
			return nil, err
		}
		if err := r.Done(); err != nil {
			return nil, err
		}
		return nil, p.addManifest(path, f)
	case MethodAppendFile:
		path := r.Str()
		data := r.Bytes32()
		if err := r.Done(); err != nil {
			return nil, err
		}
		return nil, p.addFile(path, data, true)
	case MethodRemoveFile:
		path := r.Str()
		if err := r.Done(); err != nil {
			return nil, err
		}
		f, ok := p.files[path]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoFile, path)
		}
		p.st.Release(f.refs())
		delete(p.files, path)
		return nil, nil
	case MethodListContents:
		if err := r.Done(); err != nil {
			return nil, err
		}
		return p.listContents(), nil
	case MethodGetFile:
		path := r.Str()
		if err := r.Done(); err != nil {
			return nil, err
		}
		f, ok := p.files[path]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoFile, path)
		}
		if f.size > MaxInlineRead {
			return nil, fmt.Errorf("%w: %q is %d bytes", ErrInlineRead, path, f.size)
		}
		return f.read(p.st, 0, f.size)
	case MethodGetChunk:
		path := r.Str()
		off := r.Int64()
		n := r.Int64()
		if err := r.Done(); err != nil {
			return nil, err
		}
		f, ok := p.files[path]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoFile, path)
		}
		return f.read(p.st, off, n)
	case MethodStat:
		path := r.Str()
		if err := r.Done(); err != nil {
			return nil, err
		}
		f, ok := p.files[path]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoFile, path)
		}
		w := wire.NewWriter(64)
		f.info(path).encode(w)
		return w.Bytes(), nil
	case MethodSetMeta:
		key := r.Str()
		val := r.Str()
		if err := r.Done(); err != nil {
			return nil, err
		}
		if val == "" {
			delete(p.meta, key)
		} else {
			p.meta[key] = val
		}
		return nil, nil
	case MethodGetMeta:
		key := r.Str()
		if err := r.Done(); err != nil {
			return nil, err
		}
		if key != "" {
			return []byte(p.meta[key]), nil
		}
		return p.encodeMeta(), nil
	default:
		return nil, fmt.Errorf("pkgobj: unknown method %q", inv.Method)
	}
}

// chunkInto appends data to f's manifest in store-pinned chunks. All
// chunks are exactly chunkSize long except a final partial one, so
// chunk boundaries — and therefore manifests and marshalled state —
// are a deterministic function of content alone, not of the
// AddFile/AppendFile history that produced it. On error it releases
// what it pinned and reports how far it got.
func chunkInto(f *file, st *store.Store, chunkSize int, data []byte) error {
	var added []store.Ref
	for len(data) > 0 {
		n := chunkSize
		if n > len(data) {
			n = len(data)
		}
		ref, err := st.PutPinned(data[:n])
		if err != nil {
			st.Release(added)
			return err
		}
		added = append(added, ref)
		f.chunks = append(f.chunks, store.Chunk{Ref: ref, Size: int64(n)})
		f.size += int64(n)
		data = data[n:]
	}
	return nil
}

// addManifest installs a file from its manifest alone — the landing
// half of a negotiated bulk write, where the chunk bodies arrived
// separately (OpChunkPut) or were already present. Every referenced
// chunk must be resident or the write fails without touching state.
// Boundaries must be canonical (chunkInto's invariant: every chunk
// exactly chunkSize except the tail), so a file written by manifest
// marshals identically to the same content written by AddFile. Like
// state installs, the whole-content digest is the authorized writer's
// claim; readers verify it end to end.
func (p *Package) addManifest(path string, f *file) error {
	if !validPath(path) {
		return fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	for i, c := range f.chunks {
		if c.Size > int64(p.chunkSize) || (c.Size != int64(p.chunkSize) && i != len(f.chunks)-1) {
			return fmt.Errorf("pkgobj: manifest for %q has non-canonical chunk boundaries (chunk %d is %d bytes, store chunks at %d)",
				path, i, c.Size, p.chunkSize)
		}
	}
	if err := p.st.Retain(f.refs()); err != nil {
		return fmt.Errorf("pkgobj: install manifest %q: %w", path, err)
	}
	if old := p.files[path]; old != nil {
		p.st.Release(old.refs())
	}
	p.files[path] = f
	return nil
}

// addFile stores data, chunked, into the content store, replacing or
// extending the manifest at path. An append re-chunks at most the old
// partial tail chunk, so appending to a huge file costs O(appended
// bytes) in hashing and storage, never O(file).
func (p *Package) addFile(path string, data []byte, appendTo bool) error {
	if !validPath(path) {
		return fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	old := p.files[path]

	if old == nil || !appendTo {
		f := &file{h: sha256.New()}
		f.h.Write(data)
		if err := chunkInto(f, p.st, p.chunkSize, data); err != nil {
			return err
		}
		f.h.Sum(f.digest[:0])
		if old != nil {
			p.st.Release(old.refs())
		}
		p.files[path] = f
		return nil
	}

	f := old
	if f.h == nil {
		// First append after a state install: resume the digest from
		// stored content.
		if err := f.rebuildHash(p.st); err != nil {
			return err
		}
	}
	// Keep chunk boundaries canonical: fold a partial tail chunk into
	// the appended data and re-chunk from its start.
	var dropTail []store.Ref
	savedChunks, savedSize, savedDigest := f.chunks, f.size, f.digest
	f.h.Write(data)
	if n := len(f.chunks); n > 0 && f.chunks[n-1].Size < int64(p.chunkSize) {
		tail := f.chunks[n-1]
		tailData, err := p.st.Get(tail.Ref)
		if err != nil {
			f.h = nil // the running digest already consumed data; rebuild lazily
			return err
		}
		merged := make([]byte, 0, int64(len(data))+tail.Size)
		merged = append(merged, tailData...)
		merged = append(merged, data...)
		data = merged
		dropTail = []store.Ref{tail.Ref}
		f.chunks = f.chunks[: n-1 : n-1]
		f.size -= tail.Size
	}
	if err := chunkInto(f, p.st, p.chunkSize, data); err != nil {
		f.chunks, f.size, f.digest = savedChunks, savedSize, savedDigest
		f.h = nil
		return err
	}
	f.h.Sum(f.digest[:0])
	p.st.Release(dropTail)
	return nil
}

func (p *Package) listContents() []byte {
	paths := make([]string, 0, len(p.files))
	for path := range p.files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	w := wire.NewWriter(64 * len(paths))
	w.Count(len(paths))
	for _, path := range paths {
		p.files[path].info(path).encode(w)
	}
	return w.Bytes()
}

func (p *Package) encodeMeta() []byte {
	keys := make([]string, 0, len(p.meta))
	for k := range p.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := wire.NewWriter(64)
	w.Count(len(keys))
	for _, k := range keys {
		w.Str(k)
		w.Str(p.meta[k])
	}
	return w.Bytes()
}

// encodeManifest appends one file manifest to a state encoding.
func encodeManifest(w *wire.Writer, path string, f *file) {
	w.Str(path)
	w.Int64(f.size)
	w.Hash(f.digest)
	w.Count(len(f.chunks))
	for _, c := range f.chunks {
		w.Hash(c.Ref)
		w.Int64(c.Size)
	}
}

// decodeManifest reads one file manifest. Sizes are untrusted input:
// a chunk size must be positive (a negative or zero length would
// corrupt the offset arithmetic of every later read) and the sizes
// must sum to the claimed file size.
func decodeManifest(r *wire.Reader) (path string, f *file, err error) {
	path = r.Str()
	f = &file{size: r.Int64(), digest: r.Hash()}
	n := r.Count()
	if err := r.Err(); err != nil {
		return "", nil, err
	}
	if f.size < 0 {
		return "", nil, fmt.Errorf("pkgobj: manifest for %q claims negative size", path)
	}
	f.chunks = make([]store.Chunk, n)
	var total int64
	for i := 0; i < n; i++ {
		f.chunks[i] = store.Chunk{Ref: r.Hash(), Size: r.Int64()}
		if r.Err() == nil && f.chunks[i].Size <= 0 {
			return "", nil, fmt.Errorf("pkgobj: manifest for %q has a %d-byte chunk", path, f.chunks[i].Size)
		}
		total += f.chunks[i].Size
	}
	if err := r.Err(); err != nil {
		return "", nil, err
	}
	if total != f.size {
		return "", nil, fmt.Errorf("pkgobj: manifest for %q sums to %d bytes, claims %d", path, total, f.size)
	}
	return path, f, nil
}

// MarshalState implements core.Semantics. The encoding is canonical
// (sorted paths, manifests instead of content) and small regardless
// of content size: chunk bytes travel separately, fetched by ref by
// receivers that lack them.
func (p *Package) MarshalState() ([]byte, error) {
	w := wire.NewWriter(1024)
	w.Uint32(uint32(p.chunkSize))
	w.Bytes32(p.encodeMeta())

	paths := make([]string, 0, len(p.files))
	for path := range p.files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	w.Count(len(paths))
	for _, path := range paths {
		encodeManifest(w, path, p.files[path])
	}
	p.encodeVersions(w)
	if err := w.Err(); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// UnmarshalState implements core.Semantics. Every chunk the manifests
// reference must already be present in the package's store — the
// replication layer fetches missing chunks before installing state —
// or the install fails without touching current state.
func (p *Package) UnmarshalState(b []byte) error {
	r := wire.NewReader(b)
	chunkSize := int(r.Uint32())
	metaBytes := r.Bytes32()
	count := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	if chunkSize <= 0 {
		return fmt.Errorf("pkgobj: bad chunk size %d in state", chunkSize)
	}

	mr := wire.NewReader(metaBytes)
	nMeta := mr.Count()
	meta := make(map[string]string, nMeta)
	for i := 0; i < nMeta; i++ {
		k := mr.Str()
		meta[k] = mr.Str()
	}
	if err := mr.Done(); err != nil {
		return err
	}

	next := &Package{meta: meta, files: make(map[string]*file, count), chunkSize: chunkSize, st: p.st}
	for i := 0; i < count; i++ {
		path, f, err := decodeManifest(r)
		if err != nil {
			return err
		}
		if !validPath(path) {
			return fmt.Errorf("%w: %q", ErrBadPath, path)
		}
		next.files[path] = f
	}
	versions, err := decodeVersions(r)
	if err != nil {
		return err
	}
	next.versions = versions
	if err := r.Done(); err != nil {
		return err
	}

	// Pin the incoming state's chunks before dropping the old pins, so
	// chunks shared between old and new state never hit zero.
	var pinned [][]store.Ref
	pin := func(f *file) error {
		refs := f.refs()
		if err := next.st.Retain(refs); err != nil {
			return err
		}
		pinned = append(pinned, refs)
		return nil
	}
	fail := func(err error) error {
		for _, refs := range pinned {
			next.st.Release(refs)
		}
		return err
	}
	for _, f := range next.files {
		if err := pin(f); err != nil {
			return fail(fmt.Errorf("pkgobj: install state: %w", err))
		}
	}
	for _, v := range next.versions {
		for _, f := range v.files {
			if err := pin(f); err != nil {
				return fail(fmt.Errorf("pkgobj: install state: %w", err))
			}
		}
	}
	p.releaseAll()
	*p = *next
	return nil
}

// StateRefs implements core.ChunkedState: the chunk refs a marshalled
// state references, without installing it. Receivers diff this
// against their store to fetch only missing chunks (delta sync).
func (p *Package) StateRefs(state []byte) ([]store.Ref, error) {
	return StateRefs(state)
}

// StateRefs parses the chunk refs out of a marshalled package state.
func StateRefs(state []byte) ([]store.Ref, error) {
	r := wire.NewReader(state)
	_ = r.Uint32()  // chunk size
	_ = r.Bytes32() // meta
	var refs []store.Ref
	readFiles := func() error {
		count := r.Count()
		if err := r.Err(); err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			_, f, err := decodeManifest(r)
			if err != nil {
				return err
			}
			refs = append(refs, f.refs()...)
		}
		return nil
	}
	if err := readFiles(); err != nil {
		return nil, err
	}
	nv := r.Count()
	if err := r.Err(); err != nil {
		return nil, err
	}
	for i := 0; i < nv; i++ {
		_ = r.Str() // label
		if err := readFiles(); err != nil {
			return nil, err
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return refs, nil
}

// Files returns the number of files; tests and checkpoint logs use it.
func (p *Package) Files() int { return len(p.files) }

// TotalSize sums all file sizes.
func (p *Package) TotalSize() int64 {
	var total int64
	for _, f := range p.files {
		total += f.size
	}
	return total
}

package pkgobj

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"time"

	"gdn/internal/core"
	"gdn/internal/wire"
)

// Stub is the typed face of a package DSO: the hand-written equivalent
// of the control-subobject code Globe's IDL compiler would generate
// (paper §7). It marshals each method's parameters, classifies it as a
// read or a write, and invokes through the local representative, so
// callers never touch invocation messages.
//
// The stub accumulates the virtual network cost of the calls it makes;
// experiments read it with TakeCost.
type Stub struct {
	lr *core.LR

	mu   sync.Mutex
	cost time.Duration
}

// NewStub wraps a bound local representative of a package DSO.
func NewStub(lr *core.LR) *Stub { return &Stub{lr: lr} }

// LR returns the underlying representative.
func (s *Stub) LR() *core.LR { return s.lr }

// Close releases the representative.
func (s *Stub) Close() error { return s.lr.Close() }

// TakeCost returns the virtual network cost accumulated since the last
// call and resets the accumulator.
func (s *Stub) TakeCost() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.cost
	s.cost = 0
	return c
}

func (s *Stub) invoke(method string, write bool, args []byte) ([]byte, error) {
	out, cost, err := s.lr.Invoke(method, write, args)
	s.mu.Lock()
	s.cost += cost
	s.mu.Unlock()
	return out, err
}

// AddFile stores a file, replacing any previous content at the path.
func (s *Stub) AddFile(path string, data []byte) error {
	w := wire.NewWriter(8 + len(path) + len(data))
	w.Str(path)
	w.Bytes32(data)
	_, err := s.invoke(MethodAddFile, true, w.Bytes())
	return err
}

// AppendFile appends to a file, creating it when missing; moderator
// tools upload very large files in slices with it.
func (s *Stub) AppendFile(path string, data []byte) error {
	w := wire.NewWriter(8 + len(path) + len(data))
	w.Str(path)
	w.Bytes32(data)
	_, err := s.invoke(MethodAppendFile, true, w.Bytes())
	return err
}

// RemoveFile deletes a file from the package.
func (s *Stub) RemoveFile(path string) error {
	w := wire.NewWriter(4 + len(path))
	w.Str(path)
	_, err := s.invoke(MethodRemoveFile, true, w.Bytes())
	return err
}

// ListContents returns the package's files, sorted by path.
func (s *Stub) ListContents() ([]FileInfo, error) {
	out, err := s.invoke(MethodListContents, false, nil)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(out)
	n := r.Count()
	if r.Err() != nil {
		return nil, r.Err()
	}
	infos := make([]FileInfo, 0, n)
	for i := 0; i < n; i++ {
		infos = append(infos, decodeFileInfo(r))
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return infos, nil
}

// GetFileContents returns a file's full content.
func (s *Stub) GetFileContents(path string) ([]byte, error) {
	w := wire.NewWriter(4 + len(path))
	w.Str(path)
	return s.invoke(MethodGetFile, false, w.Bytes())
}

// GetFileChunk reads up to n bytes at offset off; short reads signal
// end of file.
func (s *Stub) GetFileChunk(path string, off, n int64) ([]byte, error) {
	w := wire.NewWriter(20 + len(path))
	w.Str(path)
	w.Int64(off)
	w.Int64(n)
	return s.invoke(MethodGetChunk, false, w.Bytes())
}

// Stat returns one file's metadata.
func (s *Stub) Stat(path string) (FileInfo, error) {
	w := wire.NewWriter(4 + len(path))
	w.Str(path)
	out, err := s.invoke(MethodStat, false, w.Bytes())
	if err != nil {
		return FileInfo{}, err
	}
	r := wire.NewReader(out)
	fi := decodeFileInfo(r)
	if err := r.Done(); err != nil {
		return FileInfo{}, err
	}
	return fi, nil
}

// VerifyFile downloads a file and checks its digest against Stat —
// the end-to-end integrity check the GDN's security story leans on.
func (s *Stub) VerifyFile(path string) error {
	fi, err := s.Stat(path)
	if err != nil {
		return err
	}
	data, err := s.GetFileContents(path)
	if err != nil {
		return err
	}
	if got := sha256.Sum256(data); got != fi.Digest {
		return fmt.Errorf("pkgobj: %q digest mismatch: content corrupted in transit or at a replica", path)
	}
	return nil
}

// SetMeta sets one metadata entry; an empty value deletes the key.
func (s *Stub) SetMeta(key, value string) error {
	w := wire.NewWriter(8 + len(key) + len(value))
	w.Str(key)
	w.Str(value)
	_, err := s.invoke(MethodSetMeta, true, w.Bytes())
	return err
}

// GetMeta reads one metadata entry ("" when unset).
func (s *Stub) GetMeta(key string) (string, error) {
	if key == "" {
		return "", fmt.Errorf("pkgobj: GetMeta needs a key; use Meta for all entries")
	}
	w := wire.NewWriter(4 + len(key))
	w.Str(key)
	out, err := s.invoke(MethodGetMeta, false, w.Bytes())
	return string(out), err
}

// Meta returns all metadata entries.
func (s *Stub) Meta() (map[string]string, error) {
	w := wire.NewWriter(4)
	w.Str("")
	out, err := s.invoke(MethodGetMeta, false, w.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(out)
	n := r.Count()
	if r.Err() != nil {
		return nil, r.Err()
	}
	meta := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.Str()
		meta[k] = r.Str()
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return meta, nil
}

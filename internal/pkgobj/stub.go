package pkgobj

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
	"strings"
	"sync"
	"time"

	"gdn/internal/core"
	"gdn/internal/obs"
	"gdn/internal/store"
	"gdn/internal/wire"
)

// Stub is the typed face of a package DSO: the hand-written equivalent
// of the control-subobject code Globe's IDL compiler would generate
// (paper §7). It marshals each method's parameters, classifies it as a
// read or a write, and invokes through the local representative, so
// callers never touch invocation messages.
//
// The stub accumulates the virtual network cost of the calls it makes;
// experiments read it with TakeCost.
type Stub struct {
	lr *core.LR

	mu   sync.Mutex
	cost time.Duration
}

// NewStub wraps a bound local representative of a package DSO.
func NewStub(lr *core.LR) *Stub { return &Stub{lr: lr} }

// LR returns the underlying representative.
func (s *Stub) LR() *core.LR { return s.lr }

// Close releases the representative.
func (s *Stub) Close() error { return s.lr.Close() }

// TakeCost returns the virtual network cost accumulated since the last
// call and resets the accumulator.
func (s *Stub) TakeCost() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.cost
	s.cost = 0
	return c
}

func (s *Stub) invoke(method string, write bool, args []byte) ([]byte, error) {
	out, cost, err := s.lr.Invoke(method, write, args)
	s.mu.Lock()
	s.cost += cost
	s.mu.Unlock()
	return out, err
}

// AddFile stores a file, replacing any previous content at the path.
func (s *Stub) AddFile(path string, data []byte) error {
	w := wire.NewWriter(8 + len(path) + len(data))
	w.Str(path)
	w.Bytes32(data)
	_, err := s.invoke(MethodAddFile, true, w.Bytes())
	return err
}

// uploadSliceSize bounds one AddFile/AppendFile invocation so upload
// messages stay far under the wire field limit regardless of file
// size.
const uploadSliceSize = 4 << 20

// UploadFile stores a file of any size — the moderator-tool upload
// path. No single protocol message scales with the file. When the
// replication subobject supports chunk negotiation the transfer is a
// delta: the remote names the content chunks it lacks, only those
// bodies cross the wire (as an upload stream), and a manifest write
// installs the file — so re-deploying a mostly-unchanged file costs
// its changed chunks, and an unchanged one costs no content bytes at
// all. Otherwise the content travels in bounded AddFile/AppendFile
// slices as before.
func (s *Stub) UploadFile(path string, data []byte) error {
	// Re-deploy short-circuit: the remote file already holds exactly
	// this content (size and whole-file digest agree), so there is
	// nothing to transfer in either shape.
	if fi, err := s.Stat(path); err == nil && fi.Size == int64(len(data)) && fi.Digest == sha256.Sum256(data) {
		return nil
	}
	if neg, ok := s.lr.Replication().(core.ChunkNegotiator); ok {
		if err := s.uploadNegotiated(neg, path, data); err == nil {
			return nil
		}
		// Any negotiated-path failure falls back to the content-bearing
		// slice upload; its error (if the problem persists) is the
		// authoritative one.
	}
	first := data
	if len(first) > uploadSliceSize {
		first = first[:uploadSliceSize]
	}
	if err := s.AddFile(path, first); err != nil {
		return err
	}
	for off := len(first); off < len(data); {
		end := off + uploadSliceSize
		if end > len(data) {
			end = len(data)
		}
		if err := s.AppendFile(path, data[off:end]); err != nil {
			return err
		}
		off = end
	}
	return nil
}

// uploadNegotiated ships data as a negotiated delta: canonical chunk
// refs, a which-of-these-do-you-have round, missing bodies over an
// upload stream, then the manifest write.
func (s *Stub) uploadNegotiated(neg core.ChunkNegotiator, path string, data []byte) error {
	var chunks []store.Chunk
	bodies := make(map[store.Ref][]byte)
	refs := make([]store.Ref, 0, len(data)/DefaultChunkSize+1)
	for off := 0; off < len(data); {
		n := DefaultChunkSize
		if n > len(data)-off {
			n = len(data) - off
		}
		body := data[off : off+n]
		ref := store.RefOf(body)
		chunks = append(chunks, store.Chunk{Ref: ref, Size: int64(n)})
		refs = append(refs, ref)
		bodies[ref] = body
		off += n
	}

	missing, cost, err := neg.MissingChunks(refs)
	s.addCost(cost)
	if err != nil {
		return err
	}
	if len(missing) > 0 {
		push := make([][]byte, 0, len(missing))
		for _, ref := range missing {
			body, ok := bodies[ref]
			if !ok {
				return fmt.Errorf("pkgobj: negotiation asked for chunk %s we never offered", ref.Short())
			}
			push = append(push, body)
		}
		cost, err := neg.PushChunks(push)
		s.addCost(cost)
		if err != nil {
			return err
		}
	}

	w := wire.NewWriter(64 + len(path) + 40*len(chunks))
	w.Str(path)
	w.Int64(int64(len(data)))
	w.Hash(sha256.Sum256(data))
	w.Count(len(chunks))
	for _, c := range chunks {
		w.Hash(c.Ref)
		w.Int64(c.Size)
	}
	_, err = s.invoke(MethodAddManifest, true, w.Bytes())
	return err
}

// addCost accumulates virtual network cost incurred outside invoke.
func (s *Stub) addCost(d time.Duration) {
	s.mu.Lock()
	s.cost += d
	s.mu.Unlock()
}

// AppendFile appends to a file, creating it when missing; moderator
// tools upload very large files in slices with it.
func (s *Stub) AppendFile(path string, data []byte) error {
	w := wire.NewWriter(8 + len(path) + len(data))
	w.Str(path)
	w.Bytes32(data)
	_, err := s.invoke(MethodAppendFile, true, w.Bytes())
	return err
}

// RemoveFile deletes a file from the package.
func (s *Stub) RemoveFile(path string) error {
	w := wire.NewWriter(4 + len(path))
	w.Str(path)
	_, err := s.invoke(MethodRemoveFile, true, w.Bytes())
	return err
}

// ListContents returns the package's files, sorted by path.
func (s *Stub) ListContents() ([]FileInfo, error) {
	out, err := s.invoke(MethodListContents, false, nil)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(out)
	n := r.Count()
	if r.Err() != nil {
		return nil, r.Err()
	}
	infos := make([]FileInfo, 0, n)
	for i := 0; i < n; i++ {
		infos = append(infos, decodeFileInfo(r))
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return infos, nil
}

// isInlineRead recognizes ErrInlineRead across an RPC boundary, where
// remote errors arrive flattened to text. The one string probe both
// whole-content fallbacks share; a structured error code over the
// wire would replace it (ROADMAP follow-up).
func isInlineRead(err error) bool {
	return err != nil && strings.Contains(err.Error(), ErrInlineRead.Error())
}

// GetFileContents returns a file's full content. Files above
// MaxInlineRead cannot travel as one protocol message; the stub
// transparently assembles them through the chunk-bounded streaming
// read instead, so callers keep working at any size (though they
// still hold the whole content in memory — prefer ReadFileTo).
func (s *Stub) GetFileContents(path string) ([]byte, error) {
	w := wire.NewWriter(4 + len(path))
	w.Str(path)
	out, err := s.invoke(MethodGetFile, false, w.Bytes())
	if isInlineRead(err) {
		var buf bytes.Buffer
		if _, rerr := s.ReadFileTo(&buf, path); rerr != nil {
			return nil, rerr
		}
		return buf.Bytes(), nil
	}
	return out, err
}

// GetFileChunk reads up to n bytes at offset off; short reads signal
// end of file.
func (s *Stub) GetFileChunk(path string, off, n int64) ([]byte, error) {
	w := wire.NewWriter(20 + len(path))
	w.Str(path)
	w.Int64(off)
	w.Int64(n)
	return s.invoke(MethodGetChunk, false, w.Bytes())
}

// Stat returns one file's metadata.
func (s *Stub) Stat(path string) (FileInfo, error) {
	w := wire.NewWriter(4 + len(path))
	w.Str(path)
	out, err := s.invoke(MethodStat, false, w.Bytes())
	if err != nil {
		return FileInfo{}, err
	}
	r := wire.NewReader(out)
	fi := decodeFileInfo(r)
	if err := r.Done(); err != nil {
		return FileInfo{}, err
	}
	return fi, nil
}

// streamChunkSize is the fallback read size when the replication
// subobject cannot stream and ReadFileTo degrades to chunk RPCs.
const streamChunkSize = int64(DefaultChunkSize)

// ReadFileTo streams a file's full content into w with chunk-bounded
// buffering and verifies the SHA-256 digest end to end as the bytes
// flow — the GDN's integrity guarantee (§6.1) on the download path.
// When the replication subobject supports bulk streaming the content
// arrives as a frame stream over one call; otherwise it degrades to a
// sequence of chunk reads. It returns the byte count written.
func (s *Stub) ReadFileTo(w io.Writer, path string) (int64, error) {
	return s.ReadFileToT(obs.SpanContext{}, w, path)
}

// ReadFileToT is ReadFileTo carrying a trace context, so the bulk
// stream (and any upstream fill it triggers) joins the caller's trace.
func (s *Stub) ReadFileToT(tc obs.SpanContext, w io.Writer, path string) (int64, error) {
	ds := newDigestSink(w)
	defer ds.stop()

	if br, ok := s.lr.Replication().(core.BulkReader); ok {
		m, cost, err := br.ReadBulk(tc, path, 0, -1, ds.sink)
		s.mu.Lock()
		s.cost += cost
		s.mu.Unlock()
		if err != nil {
			return ds.written, err
		}
		if ds.written != m.Size {
			return ds.written, fmt.Errorf("pkgobj: %q truncated: %d of %d bytes", path, ds.written, m.Size)
		}
		if ds.sum() != m.Digest {
			return ds.written, fmt.Errorf("pkgobj: %q digest mismatch: content corrupted in transit or at a replica", path)
		}
		return ds.written, nil
	}

	// Fallback: chunk-at-a-time reads through the invocation path.
	fi, err := s.Stat(path)
	if err != nil {
		return 0, err
	}
	for off := int64(0); off < fi.Size; {
		chunk, err := s.GetFileChunk(path, off, streamChunkSize)
		if err != nil {
			return ds.written, err
		}
		if len(chunk) == 0 {
			return ds.written, fmt.Errorf("pkgobj: %q truncated at offset %d", path, off)
		}
		if err := ds.sink(chunk); err != nil {
			return ds.written, err
		}
		off += int64(len(chunk))
	}
	if ds.sum() != fi.Digest {
		return ds.written, fmt.Errorf("pkgobj: %q digest mismatch: content corrupted in transit or at a replica", path)
	}
	return ds.written, nil
}

// digestSink verifies a download end to end while writing it out.
// SHA-256 is the dominant CPU cost of a verified download (it touches
// every byte once more than the copy to the consumer does), so the
// hash runs on its own goroutine concurrently with the consumer write:
// each chunk costs max(hash, write) instead of their sum. Chunk slices
// are only borrowed for the duration of sink (stream frames are pooled
// and recycled by the caller), so sink joins the hasher before
// returning — the goroutine never retains p.
type digestSink struct {
	h       hash.Hash
	w       io.Writer
	in      chan []byte
	hashed  chan struct{}
	written int64
}

func newDigestSink(w io.Writer) *digestSink {
	ds := &digestSink{h: sha256.New(), w: w, in: make(chan []byte), hashed: make(chan struct{})}
	go func() {
		for p := range ds.in {
			ds.h.Write(p)
			ds.hashed <- struct{}{}
		}
		close(ds.hashed)
	}()
	return ds
}

func (ds *digestSink) sink(p []byte) error {
	ds.in <- p
	n, err := ds.w.Write(p)
	ds.written += int64(n)
	<-ds.hashed
	return err
}

// stop joins the hasher goroutine; it is idempotent and safe after a
// partial transfer.
func (ds *digestSink) stop() {
	if ds.in != nil {
		close(ds.in)
		<-ds.hashed
		ds.in = nil
	}
}

// sum joins the hasher and returns the digest of everything sunk.
func (ds *digestSink) sum() [sha256.Size]byte {
	ds.stop()
	var got [sha256.Size]byte
	ds.h.Sum(got[:0])
	return got
}

// ReadFileRangeTo streams the byte range [off, off+n) of a file into w
// with chunk-bounded buffering (n < 0 means to end of file) and
// returns the byte count written. Unlike ReadFileTo there is no
// whole-file digest to verify — a partial body cannot be checked
// against the manifest's digest — so integrity rests on the chunk
// layer: stores verify chunk bytes against their content address on
// every disk read and network fill. Callers that need end-to-end
// verification fetch the whole file or check the assembled ranges
// against the digest themselves (it rides the X-GDN-Digest header on
// the HTTP path).
func (s *Stub) ReadFileRangeTo(w io.Writer, path string, off, n int64) (int64, error) {
	return s.ReadFileRangeToT(obs.SpanContext{}, w, path, off, n)
}

// ReadFileRangeToT is ReadFileRangeTo carrying a trace context.
func (s *Stub) ReadFileRangeToT(tc obs.SpanContext, w io.Writer, path string, off, n int64) (int64, error) {
	var written int64
	sink := func(p []byte) error {
		m, err := w.Write(p)
		written += int64(m)
		return err
	}
	if br, ok := s.lr.Replication().(core.BulkReader); ok {
		_, cost, err := br.ReadBulk(tc, path, off, n, sink)
		s.addCost(cost)
		return written, err
	}

	// Fallback: chunk-at-a-time reads through the invocation path.
	fi, err := s.Stat(path)
	if err != nil {
		return 0, err
	}
	end := fi.Size
	if n >= 0 && off+n < end {
		end = off + n
	}
	for pos := off; pos < end; {
		want := end - pos
		if want > streamChunkSize {
			want = streamChunkSize
		}
		chunk, err := s.GetFileChunk(path, pos, want)
		if err != nil {
			return written, err
		}
		if len(chunk) == 0 {
			return written, fmt.Errorf("pkgobj: %q truncated at offset %d", path, pos)
		}
		if err := sink(chunk); err != nil {
			return written, err
		}
		pos += int64(len(chunk))
	}
	return written, nil
}

// VerifyFile downloads a file with chunk-bounded buffering and checks
// its digest — the end-to-end integrity check the GDN's security
// story leans on.
func (s *Stub) VerifyFile(path string) error {
	_, err := s.ReadFileTo(io.Discard, path)
	return err
}

// SetMeta sets one metadata entry; an empty value deletes the key.
func (s *Stub) SetMeta(key, value string) error {
	w := wire.NewWriter(8 + len(key) + len(value))
	w.Str(key)
	w.Str(value)
	_, err := s.invoke(MethodSetMeta, true, w.Bytes())
	return err
}

// GetMeta reads one metadata entry ("" when unset).
func (s *Stub) GetMeta(key string) (string, error) {
	if key == "" {
		return "", fmt.Errorf("pkgobj: GetMeta needs a key; use Meta for all entries")
	}
	w := wire.NewWriter(4 + len(key))
	w.Str(key)
	out, err := s.invoke(MethodGetMeta, false, w.Bytes())
	return string(out), err
}

// Meta returns all metadata entries.
func (s *Stub) Meta() (map[string]string, error) {
	w := wire.NewWriter(4)
	w.Str("")
	out, err := s.invoke(MethodGetMeta, false, w.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(out)
	n := r.Count()
	if r.Err() != nil {
		return nil, r.Err()
	}
	meta := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.Str()
		meta[k] = r.Str()
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return meta, nil
}

package pkgobj

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"gdn/internal/core"
	"gdn/internal/ids"
)

// newLocalStub wraps a package in a local, network-free representative
// so the whole stub → control → invocation path is exercised.
func newLocalStub(t *testing.T, p *Package) *Stub {
	t.Helper()
	lr := core.NewLocalLR(ids.Derive("pkgobj-test"), p)
	t.Cleanup(func() { lr.Close() })
	return NewStub(lr)
}

func TestAddListGetRemove(t *testing.T) {
	p := New()
	s := newLocalStub(t, p)

	if err := s.AddFile("README", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFile("src/main.c", bytes.Repeat([]byte("x"), 1000)); err != nil {
		t.Fatal(err)
	}

	infos, err := s.ListContents()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Path != "README" || infos[1].Path != "src/main.c" {
		t.Fatalf("infos = %+v", infos)
	}
	if infos[1].Size != 1000 {
		t.Fatalf("size = %d", infos[1].Size)
	}
	want := sha256.Sum256([]byte("hello"))
	if infos[0].Digest != want {
		t.Fatal("digest mismatch")
	}

	data, err := s.GetFileContents("README")
	if err != nil || string(data) != "hello" {
		t.Fatalf("content = %q, %v", data, err)
	}

	if err := s.RemoveFile("README"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetFileContents("README"); err == nil {
		t.Fatal("removed file must not be readable")
	}
	if err := s.RemoveFile("README"); err == nil {
		t.Fatal("removing a missing file must fail")
	}
}

func TestChunkedReads(t *testing.T) {
	p := New()
	p.chunkSize = 16 // tiny chunks exercise boundary logic
	s := newLocalStub(t, p)

	content := make([]byte, 1000)
	rand.New(rand.NewSource(5)).Read(content)
	if err := s.AddFile("blob", content); err != nil {
		t.Fatal(err)
	}

	// Reassemble with odd-sized reads straddling chunk boundaries.
	var got []byte
	for off := int64(0); ; {
		chunk, err := s.GetFileChunk("blob", off, 37)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunk) == 0 {
			break
		}
		got = append(got, chunk...)
		off += int64(len(chunk))
	}
	if !bytes.Equal(got, content) {
		t.Fatal("chunked reassembly differs from original")
	}

	// Reads past EOF are empty, not errors.
	chunk, err := s.GetFileChunk("blob", 5000, 10)
	if err != nil || len(chunk) != 0 {
		t.Fatalf("past-EOF read: %d bytes, %v", len(chunk), err)
	}
	// Partial read at the tail.
	chunk, err = s.GetFileChunk("blob", 990, 100)
	if err != nil || len(chunk) != 10 {
		t.Fatalf("tail read: %d bytes, %v", len(chunk), err)
	}
}

func TestAppendFile(t *testing.T) {
	p := New()
	p.chunkSize = 8
	s := newLocalStub(t, p)

	var want []byte
	for i := 0; i < 10; i++ {
		part := bytes.Repeat([]byte{byte('a' + i)}, 5)
		if err := s.AppendFile("log", part); err != nil {
			t.Fatal(err)
		}
		want = append(want, part...)
	}
	got, err := s.GetFileContents("log")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("append result mismatch: %v", err)
	}
	fi, err := s.Stat("log")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Digest != sha256.Sum256(want) {
		t.Fatal("append must rehash")
	}

	// AddFile after appends replaces, not extends.
	if err := s.AddFile("log", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.GetFileContents("log")
	if string(got) != "fresh" {
		t.Fatalf("AddFile must replace: %q", got)
	}
}

func TestPathValidation(t *testing.T) {
	s := newLocalStub(t, New())
	bad := []string{"", "/abs", "a//b", "../escape", "a/./b", "a/../b"}
	for _, path := range bad {
		if err := s.AddFile(path, []byte("x")); !errors.Is(err, ErrBadPath) {
			t.Errorf("AddFile(%q) = %v, want ErrBadPath", path, err)
		}
	}
	good := []string{"a", "a/b/c", "with-dash_underscore.txt", "...dots"}
	for _, path := range good {
		if err := s.AddFile(path, []byte("x")); err != nil {
			t.Errorf("AddFile(%q) = %v", path, err)
		}
	}
}

func TestNoFileSizeCeiling(t *testing.T) {
	// The seed capped files at 15 MiB because content had to fit in
	// protocol messages; manifests removed the cap. Exercise the same
	// shape scaled down: a file of many thousands of chunks, written
	// in slices, reads back intact.
	p := New()
	p.chunkSize = 64
	s := newLocalStub(t, p)
	slice := bytes.Repeat([]byte("0123456789abcdef"), 64) // 1 KiB
	const slices = 300
	for i := 0; i < slices; i++ {
		slice[0] = byte(i)
		if err := s.AppendFile("big", slice); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := s.Stat("big")
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(slice) * slices); fi.Size != want {
		t.Fatalf("size = %d, want %d", fi.Size, want)
	}
	if err := s.VerifyFile("big"); err != nil {
		t.Fatal(err)
	}
}

func TestWholeContentReadsAboveInlineBound(t *testing.T) {
	// GetFileContents and GetFileAtVersion must keep working past the
	// one-message inline bound by degrading to chunked assembly.
	p := New()
	s := newLocalStub(t, p)
	content := make([]byte, MaxInlineRead+12345)
	rand.New(rand.NewSource(11)).Read(content)
	if err := s.UploadFile("huge", content); err != nil {
		t.Fatal(err)
	}
	if err := s.TagVersion("v1"); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetFileContents("huge")
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("inline-fallback read failed: %v", err)
	}
	got, err = s.GetFileAtVersion("v1", "huge")
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("versioned inline-fallback read failed: %v", err)
	}
}

func TestDedupAcrossFiles(t *testing.T) {
	// Identical content stored under two paths costs one set of chunks.
	p := New()
	s := newLocalStub(t, p)
	content := bytes.Repeat([]byte{7}, 3*DefaultChunkSize)
	if err := s.AddFile("a", content); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFile("b", content); err != nil {
		t.Fatal(err)
	}
	// All chunks are identical (repeating content) and shared between
	// files, so the store holds exactly one chunk.
	if st := p.Store().Stats(); st.Chunks != 1 {
		t.Fatalf("store holds %d chunks, want 1 (content-addressed dedup)", st.Chunks)
	}
}

func TestMetadata(t *testing.T) {
	s := newLocalStub(t, New())
	if err := s.SetMeta("description", "GNU C compiler"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMeta("version", "2.95"); err != nil {
		t.Fatal(err)
	}
	if v, err := s.GetMeta("version"); err != nil || v != "2.95" {
		t.Fatalf("GetMeta = %q, %v", v, err)
	}
	meta, err := s.Meta()
	if err != nil || len(meta) != 2 {
		t.Fatalf("Meta = %v, %v", meta, err)
	}
	// Empty value deletes.
	if err := s.SetMeta("version", ""); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.GetMeta("version"); v != "" {
		t.Fatalf("deleted key still set: %q", v)
	}
}

func TestVerifyFileDetectsCorruption(t *testing.T) {
	p := New()
	s := newLocalStub(t, p)
	if err := s.AddFile("pkg.tar", []byte("legitimate content")); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyFile("pkg.tar"); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored chunk bytes behind the digest's back (the
	// memory store hands out its internal slice).
	data, err := p.Store().Get(p.files["pkg.tar"].chunks[0].Ref)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xFF
	if err := s.VerifyFile("pkg.tar"); err == nil {
		t.Fatal("corruption must be detected")
	}
}

func TestStateRoundTripCanonical(t *testing.T) {
	// Two packages with identical logical content but different
	// operation histories must marshal to identical bytes — the
	// property replica convergence checks rely on.
	a := New()
	sa := newLocalStub(t, a)
	if err := sa.AddFile("f1", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := sa.AddFile("f2", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	if err := sa.SetMeta("m", "1"); err != nil {
		t.Fatal(err)
	}

	b := New()
	sb := newLocalStub(t, b)
	if err := sb.SetMeta("m", "1"); err != nil {
		t.Fatal(err)
	}
	if err := sb.AddFile("f2", []byte("temp")); err != nil {
		t.Fatal(err)
	}
	if err := sb.AppendFile("f1", []byte("al")); err != nil {
		t.Fatal(err)
	}
	if err := sb.AppendFile("f1", []byte("pha")); err != nil {
		t.Fatal(err)
	}
	if err := sb.AddFile("f2", []byte("beta")); err != nil {
		t.Fatal(err)
	}

	stA, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	stB, err := b.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stA, stB) {
		t.Fatal("canonical state encoding differs for identical content")
	}

	// Round trip restores everything. State is manifests; the chunks
	// travel out of band, so the receiver shares (or pre-fills) a
	// store — here it shares a's.
	c := New()
	c.UseStore(a.Store())
	if err := c.UnmarshalState(stA); err != nil {
		t.Fatal(err)
	}
	sc := newLocalStub(t, c)
	data, err := sc.GetFileContents("f1")
	if err != nil || string(data) != "alpha" {
		t.Fatalf("restored f1 = %q, %v", data, err)
	}
	if v, _ := sc.GetMeta("m"); v != "1" {
		t.Fatal("metadata lost in round trip")
	}
}

func TestStateQuickProperty(t *testing.T) {
	// Property: marshal∘unmarshal is the identity on (path, content)
	// maps.
	f := func(seed int64, nFiles uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		p := New()
		p.chunkSize = 64
		want := make(map[string]string)
		for i := 0; i < int(nFiles%8)+1; i++ {
			path := fmt.Sprintf("dir%d/file%d", rnd.Intn(3), i)
			content := make([]byte, rnd.Intn(500))
			rnd.Read(content)
			if p.addFile(path, content, false) != nil {
				return false
			}
			want[path] = string(content)
		}
		st, err := p.MarshalState()
		if err != nil {
			return false
		}
		q := New()
		q.UseStore(p.Store())
		if q.UnmarshalState(st) != nil {
			return false
		}
		got := make(map[string]string)
		for path, f := range q.files {
			content, err := f.read(q.st, 0, f.size)
			if err != nil {
				return false
			}
			got[path] = string(content)
		}
		return reflect.DeepEqual(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	p := New()
	for _, b := range [][]byte{nil, {1}, bytes.Repeat([]byte{0xFF}, 40)} {
		if err := p.UnmarshalState(b); err == nil {
			t.Fatalf("UnmarshalState(%v) must fail", b)
		}
	}
}

func TestUnknownMethod(t *testing.T) {
	p := New()
	if _, err := p.Invoke(core.Invocation{Method: "launchMissiles"}); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestVersionManagement(t *testing.T) {
	p := New()
	s := newLocalStub(t, p)
	if err := s.AddFile("prog.c", []byte("v1 source")); err != nil {
		t.Fatal(err)
	}
	if err := s.TagVersion("1.0"); err != nil {
		t.Fatal(err)
	}

	// Development continues: the working file changes, the tag does not.
	if err := s.AddFile("prog.c", []byte("v2 source, work in progress")); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetFileAtVersion("1.0", "prog.c")
	if err != nil || string(got) != "v1 source" {
		t.Fatalf("versioned read = %q, %v", got, err)
	}
	head, err := s.GetFileContents("prog.c")
	if err != nil || string(head) != "v2 source, work in progress" {
		t.Fatalf("head read = %q, %v", head, err)
	}

	if err := s.TagVersion("2.0"); err != nil {
		t.Fatal(err)
	}
	labels, err := s.ListVersions()
	if err != nil || len(labels) != 2 || labels[0] != "1.0" || labels[1] != "2.0" {
		t.Fatalf("versions = %v, %v", labels, err)
	}

	// Tags are immutable and unknown labels fail cleanly.
	if err := s.TagVersion("1.0"); err == nil {
		t.Fatal("re-tagging must fail")
	}
	if _, err := s.GetFileAtVersion("9.9", "prog.c"); err == nil {
		t.Fatal("unknown version must fail")
	}
	if _, err := s.GetFileAtVersion("1.0", "missing.c"); err == nil {
		t.Fatal("unknown file at version must fail")
	}

	// Versions survive state marshal/unmarshal (replication, recovery).
	st, err := p.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	q := New()
	q.UseStore(p.Store())
	if err := q.UnmarshalState(st); err != nil {
		t.Fatal(err)
	}
	qs := newLocalStub(t, q)
	got, err = qs.GetFileAtVersion("1.0", "prog.c")
	if err != nil || string(got) != "v1 source" {
		t.Fatalf("versioned read after round trip = %q, %v", got, err)
	}

	// Dropping a version frees its label.
	if err := qs.DropVersion("1.0"); err != nil {
		t.Fatal(err)
	}
	if _, err := qs.GetFileAtVersion("1.0", "prog.c"); err == nil {
		t.Fatal("dropped version must vanish")
	}
	if err := qs.DropVersion("1.0"); err == nil {
		t.Fatal("double drop must fail")
	}
}

func TestVersionsReplicateThroughState(t *testing.T) {
	// A tagged version written at one representative must appear at a
	// replica initialized from its state — versions are ordinary state.
	a := New()
	sa := newLocalStub(t, a)
	if err := sa.AddFile("f", []byte("release")); err != nil {
		t.Fatal(err)
	}
	if err := sa.TagVersion("rel-1"); err != nil {
		t.Fatal(err)
	}
	st, err := a.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	b := New()
	b.UseStore(a.Store())
	if err := b.UnmarshalState(st); err != nil {
		t.Fatal(err)
	}
	stB, err := b.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st, stB) {
		t.Fatal("state with versions must re-marshal identically")
	}
}

// Benchmarks: one family per experiment of DESIGN.md §4 (E1-E10).
// Each benchmark exercises the operation its experiment measures, with
// deployment outside the timer. Two kinds of numbers appear: ns/op is
// real CPU time; the "virtual-ms/op" and "wan-KB/op" metrics are the
// simulated wide-area cost the experiments report (the shape a real
// deployment would show).
//
// Run with: go test -bench=. -benchmem
package gdn_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gdn"
	"gdn/internal/core"
	"gdn/internal/experiments"
	"gdn/internal/gls"
	"gdn/internal/gns"
	"gdn/internal/gos"
	"gdn/internal/ids"
	"gdn/internal/netsim"
	"gdn/internal/pkgobj"
	"gdn/internal/rpc"
	"gdn/internal/sec"
	"gdn/internal/transport"
	"gdn/internal/wire"
	"gdn/internal/workload"
)

// --- RPC core: multiplexed client --------------------------------------

// benchRPCParallel drives b.N echo calls through cl from `workers`
// concurrent goroutines — the contention shape of a busy HTTPD or GLS
// node fanning user requests into one upstream client.
func benchRPCParallel(b *testing.B, cl *rpc.Client, workers int) {
	b.Helper()
	body := make([]byte, 128)
	// Prime the connection outside the timer.
	if _, _, err := cl.Call(1, body); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / workers
	extra := b.N % workers
	for w := 0; w < workers; w++ {
		k := per
		if w < extra {
			k++
		}
		if k == 0 {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < k; i++ {
				if _, _, err := cl.Call(1, body); err != nil {
					b.Error(err)
					return
				}
			}
		}(k)
	}
	wg.Wait()
}

// benchRPCOverTCP serves an echo handler on loopback TCP so the numbers
// include real framing syscalls, then measures a client dialing it.
func benchRPCOverTCP(b *testing.B, workers int) {
	b.Helper()
	var tcp transport.TCP
	srv, err := rpc.Serve(tcp, "127.0.0.1:0", func(c *rpc.Call) ([]byte, error) {
		return c.Body, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	cl := rpc.NewClient(tcp, "", srv.Addr())
	b.Cleanup(func() { cl.Close() })
	benchRPCParallel(b, cl, workers)
}

// BenchmarkRPC_CallParallel is the headline mux number: 64 concurrent
// callers pipelining over one shared TCP connection. (The seed's
// checkout-per-call client measured ~2.6x slower here before it was
// retired; the numbers live in ROADMAP.md.)
func BenchmarkRPC_CallParallel(b *testing.B) {
	benchRPCOverTCP(b, 64)
}

// BenchmarkRPC_CallSequential tracks the single-caller latency floor —
// the mux must not tax callers that never pipeline.
func BenchmarkRPC_CallSequential(b *testing.B) {
	benchRPCOverTCP(b, 1)
}

// BenchmarkRPC_CallParallelSim is the same shape over the simulated
// network, the configuration every experiment and benchmark in this
// file runs on.
func BenchmarkRPC_CallParallelSim(b *testing.B) {
	net := netsim.New(nil)
	net.AddSite("cl", "c", "eu")
	net.AddSite("sv", "s", "us")
	srv, err := rpc.Serve(net, "sv:echo", func(c *rpc.Call) ([]byte, error) {
		return c.Body, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	cl := rpc.NewClient(net, "cl", "sv:echo")
	b.Cleanup(func() { cl.Close() })
	benchRPCParallel(b, cl, 64)
}

// --- E1: subobject composition overhead ------------------------------

func e1Stub(b *testing.B) *pkgobj.Stub {
	b.Helper()
	p := pkgobj.New()
	lr := core.NewLocalLR(ids.Derive("bench"), p)
	b.Cleanup(func() { lr.Close() })
	stub := pkgobj.NewStub(lr)
	if err := stub.AddFile("f", make([]byte, 4<<10)); err != nil {
		b.Fatal(err)
	}
	return stub
}

func BenchmarkE1_DirectSemanticsCall(b *testing.B) {
	p := pkgobj.New()
	if _, err := p.Invoke(core.Invocation{
		Method: pkgobj.MethodAddFile, Write: true,
		Args: addFileArgs("f", make([]byte, 4<<10)),
	}); err != nil {
		b.Fatal(err)
	}
	inv := core.Invocation{Method: pkgobj.MethodGetFile, Args: getFileArgs("f")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(inv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_ThroughLRStack(b *testing.B) {
	stub := e1Stub(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stub.GetFileContents("f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_InvocationMarshal(b *testing.B) {
	inv := core.Invocation{Method: pkgobj.MethodGetFile, Args: getFileArgs("f")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DecodeInvocation(inv.Encode()); err != nil {
			b.Fatal(err)
		}
	}
}

// addFileArgs and getFileArgs mirror the stub's argument encodings so
// the direct-call benchmark bypasses the stub entirely.
func addFileArgs(path string, data []byte) []byte {
	w := wire.NewWriter(8 + len(path) + len(data))
	w.Str(path)
	w.Bytes32(data)
	return w.Bytes()
}

func getFileArgs(path string) []byte {
	w := wire.NewWriter(4 + len(path))
	w.Str(path)
	return w.Bytes()
}

// --- E2/E3: location service -----------------------------------------

// benchGLS deploys a two-region tree with one registered object and
// returns resolvers at increasing distance from it.
func benchGLS(b *testing.B, rootSubnodes int) (oid ids.OID, near, far *gls.Resolver) {
	b.Helper()
	net := netsim.New(nil)
	var rootSites []string
	for i := 0; i < rootSubnodes; i++ {
		site := fmt.Sprintf("hub-%d", i)
		net.AddSite(site, "hub", "core")
		rootSites = append(rootSites, site)
	}
	net.AddSite("eu-a", "eu-a", "eu")
	net.AddSite("us-a", "us-a", "us")
	tree, err := gls.Deploy(net, gls.DomainSpec{
		Name: "root", Sites: rootSites,
		Children: []gls.DomainSpec{
			{Name: "eu", Sites: []string{"eu-a"}, Children: []gls.DomainSpec{gls.Leaf("eu/a", "eu-a")}},
			{Name: "us", Sites: []string{"us-a"}, Children: []gls.DomainSpec{gls.Leaf("us/a", "us-a")}},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(tree.Close)

	near, err = tree.Resolver("eu-a", "eu/a")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { near.Close() })
	far, err = tree.Resolver("us-a", "us/a")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { far.Close() })

	oid, _, err = near.Insert(ids.Nil, gls.ContactAddress{
		Protocol: "clientserver", Address: "eu-a:gos", Impl: pkgobj.Impl, Role: "server",
	})
	if err != nil {
		b.Fatal(err)
	}
	return oid, near, far
}

func benchLookup(b *testing.B, res *gls.Resolver, oid ids.OID) {
	b.Helper()
	var virtual time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cost, err := res.Lookup(oid)
		if err != nil {
			b.Fatal(err)
		}
		virtual += cost
	}
	b.ReportMetric(float64(virtual.Milliseconds())/float64(b.N), "virtual-ms/op")
}

func BenchmarkE2_LookupSameLeaf(b *testing.B) {
	oid, near, _ := benchGLS(b, 1)
	benchLookup(b, near, oid)
}

func BenchmarkE2_LookupCrossRegion(b *testing.B) {
	oid, _, far := benchGLS(b, 1)
	benchLookup(b, far, oid)
}

func BenchmarkE3_LookupPartitionedRoot4(b *testing.B) {
	oid, _, far := benchGLS(b, 4)
	benchLookup(b, far, oid)
}

func BenchmarkE3_LookupPartitionedRoot16(b *testing.B) {
	oid, _, far := benchGLS(b, 16)
	benchLookup(b, far, oid)
}

// --- Registration sessions: control-plane renewal cost ----------------

// benchLeaseWorld deploys a one-leaf tree (janitor off, so the timer
// measures renewal, not sweeping) and registers `replicas` entries for
// one server address.
func benchLeaseWorld(b *testing.B, replicas int) (*gls.Resolver, *gls.ServerSession, []ids.OID) {
	b.Helper()
	net := netsim.New(nil)
	net.AddSite("hub", "hub", "core")
	net.AddSite("gos", "gos", "eu")
	tree, err := gls.Deploy(net, gls.DomainSpec{
		Name: "root", Sites: []string{"hub"},
		Children: []gls.DomainSpec{gls.Leaf("lan", "gos")},
	}, gls.WithTreeSweep(-1))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(tree.Close)
	res, err := tree.Resolver("gos", "lan")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { res.Close() })
	sess, _, err := res.OpenSession("gos:gos-obj", time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	oids := make([]ids.OID, replicas)
	ca := gls.ContactAddress{Protocol: "clientserver", Address: "gos:gos-obj", Impl: pkgobj.Impl, Role: "server"}
	for i := range oids {
		oid, _, err := sess.Attach(ids.Nil, ca)
		if err != nil {
			b.Fatal(err)
		}
		oids[i] = oid
	}
	return res, sess, oids
}

// BenchmarkLeaseRenewal pins the control-plane cost of keeping 1000
// replicas registered: the pre-session protocol re-inserts every entry
// per heartbeat (1000 RPCs), the session protocol renews once. Both
// run against the same tree so BENCH_ci.json tracks the ratio per
// commit.
func BenchmarkLeaseRenewal_PerReplica1k(b *testing.B) {
	res, _, oids := benchLeaseWorld(b, 1000)
	ca := gls.ContactAddress{Protocol: "clientserver", Address: "gos:gos-obj", Impl: pkgobj.Impl, Role: "server"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One heartbeat interval, the old way: one InsertLease per
		// hosted replica.
		for _, oid := range oids {
			if _, _, err := res.InsertLease(oid, ca, time.Hour); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(oids)), "rpcs/heartbeat")
}

func BenchmarkLeaseRenewal_Session1k(b *testing.B) {
	_, sess, _ := benchLeaseWorld(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One heartbeat interval, the session way: one batched renew
		// covering all 1000 attached entries.
		if _, err := sess.Renew(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "rpcs/heartbeat")
}

// --- E4: differentiated replication ----------------------------------

func benchE4(b *testing.B, policy bool) {
	b.Helper()
	// One full (small) trace replay per iteration; the table-producing
	// driver carries the real experiment, this tracks its cost.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := experiments.E4Config{Docs: 12, Events: 120, Seed: int64(i) + 1}
		tab := experiments.E4Differentiated(cfg)
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE4_DifferentiatedTraceReplay(b *testing.B) { benchE4(b, true) }

// --- E5: end-to-end downloads ----------------------------------------

// benchWorld publishes one package under a scenario and returns an
// HTTPD test server near (or far from) the replicas.
func benchDownload(b *testing.B, size int, replicated bool) {
	b.Helper()
	w, err := gdn.NewWorld(gdn.DefaultTopology())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)

	servers := []string{"eu-nl-vu"}
	protocol := gdn.ProtocolClientServer
	if replicated {
		servers = []string{"eu-nl-vu", "na-ca-ucb", "ap-jp-ut"}
		protocol = gdn.ProtocolMasterSlave
	}
	mod, err := w.Moderator("eu-nl-vu", "bench")
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := mod.CreatePackage("/apps/bench", gdn.Scenario{
		Protocol: protocol, Servers: w.GOSAddrs(servers...),
	}, gdn.Package{Files: map[string][]byte{"blob": make([]byte, size)}}); err != nil {
		b.Fatal(err)
	}

	h, err := w.HTTPD("ap-au-mu", gdn.HTTPDConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(h)
	b.Cleanup(ts.Close)

	w.Net.ResetMeter()
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(ts.URL + "/pkg/apps/bench/-/blob")
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		buf := make([]byte, 64<<10)
		for {
			k, err := resp.Body.Read(buf)
			n += k
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		if n != size {
			b.Fatalf("short download: %d", n)
		}
	}
	b.StopTimer()
	m := w.Net.Meter()
	b.ReportMetric(float64(m.Bytes[netsim.WideArea])/1024/float64(b.N), "wan-KB/op")
	b.ReportMetric(float64(h.Stats().VirtualCost.Milliseconds())/float64(b.N), "virtual-ms/op")
}

func BenchmarkE5_Download1MB_Central(b *testing.B)    { benchDownload(b, 1<<20, false) }
func BenchmarkE5_Download1MB_Replicated(b *testing.B) { benchDownload(b, 1<<20, true) }
func BenchmarkE5_Download100KB_Central(b *testing.B)  { benchDownload(b, 100<<10, false) }

// BenchmarkE5_Download_Large is the bulk-transfer headline: a 64 MiB
// file — over four times the retired MaxFileSize ceiling — through
// the full GOS → HTTPD → HTTP client streaming path. MB/s comes from
// SetBytes; allocs/op tracks the chunk-bounded buffering claim (the
// per-op allocation count must not scale with file size thanks to
// frame pooling).
func BenchmarkE5_Download_Large(b *testing.B) { benchDownload(b, 64<<20, false) }

// benchDownloadParallel measures aggregate throughput under concurrent
// load: each op is one wave of conc simultaneous downloads of a
// size-byte file through a single HTTPD. MB/s is the aggregate across
// the wave; the claim is near-linear scaling from the single-stream
// number up to CPU saturation — the striped store index, striped RPC
// pending table and multi-connection peer dialing are what keep the
// wave off one lock. On few-core hosts (CI) the number demonstrates
// the absence of contention collapse rather than a wall-clock speedup.
func benchDownloadParallel(b *testing.B, size, conc int) {
	b.Helper()
	w, err := gdn.NewWorld(gdn.DefaultTopology())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)

	mod, err := w.Moderator("eu-nl-vu", "bench")
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := mod.CreatePackage("/apps/bench", gdn.Scenario{
		Protocol: gdn.ProtocolClientServer, Servers: w.GOSAddrs("eu-nl-vu"),
	}, gdn.Package{Files: map[string][]byte{"blob": make([]byte, size)}}); err != nil {
		b.Fatal(err)
	}
	h, err := w.HTTPD("ap-au-mu", gdn.HTTPDConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(h)
	b.Cleanup(ts.Close)

	b.SetBytes(int64(size) * int64(conc))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errc := make(chan error, conc)
		for j := 0; j < conc; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Get(ts.URL + "/pkg/apps/bench/-/blob")
				if err != nil {
					errc <- err
					return
				}
				n, err := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if n != int64(size) {
					errc <- fmt.Errorf("short download: %d of %d bytes", n, size)
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errc:
			b.Fatal(err)
		default:
		}
	}
}

// BenchmarkE5_Download_Parallel64 is the concurrency headline: 64
// simultaneous 4 MiB downloads through one HTTPD edge.
func BenchmarkE5_Download_Parallel64(b *testing.B) { benchDownloadParallel(b, 4<<20, 64) }

// --- E6: security channels -------------------------------------------

func benchChannel(b *testing.B, mode string) {
	b.Helper()
	net := netsim.New(nil)
	net.AddSite("a", "a", "eu")
	net.AddSite("b", "b", "us")
	l, err := net.Listen("b:svc")
	if err != nil {
		b.Fatal(err)
	}
	acc := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			acc <- c
		}
	}()
	cConn, err := net.Dial("a", "b:svc")
	if err != nil {
		b.Fatal(err)
	}
	sConn := <-acc
	l.Close()

	var client, server transport.Conn = cConn, sConn
	if mode != "plain" {
		ca, err := sec.NewAuthority("bench")
		if err != nil {
			b.Fatal(err)
		}
		sCreds, err := sec.NewCredentials(ca, sec.Principal(sec.RoleGOS, "b"), sec.RoleGOS)
		if err != nil {
			b.Fatal(err)
		}
		cCreds, err := sec.NewCredentials(ca, sec.Principal(sec.RoleGOS, "a"), sec.RoleGOS)
		if err != nil {
			b.Fatal(err)
		}
		encrypt := mode == "encrypted"
		type res struct {
			ch  *sec.Channel
			err error
		}
		done := make(chan res, 1)
		go func() {
			ch, err := sec.Server(sConn, &sec.Config{
				Creds: sCreds, TrustAnchors: ca.Anchors(),
				RequireClientAuth: true, Encrypt: encrypt,
			})
			done <- res{ch, err}
		}()
		cch, err := sec.Client(cConn, &sec.Config{
			Creds: cCreds, TrustAnchors: ca.Anchors(), Encrypt: encrypt,
		})
		if err != nil {
			b.Fatal(err)
		}
		r := <-done
		if r.err != nil {
			b.Fatal(r.err)
		}
		client, server = cch, r.ch
	}
	b.Cleanup(func() { client.Close(); server.Close() })

	const payload = 64 << 10
	buf := make([]byte, payload)
	errs := make(chan error, 1)
	go func() {
		for {
			if _, _, err := server.Recv(); err != nil {
				errs <- err
				return
			}
		}
	}()
	b.SetBytes(payload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Send(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_Channel64KB_Plain(b *testing.B)     { benchChannel(b, "plain") }
func BenchmarkE6_Channel64KB_Integrity(b *testing.B) { benchChannel(b, "integrity") }
func BenchmarkE6_Channel64KB_Encrypted(b *testing.B) { benchChannel(b, "encrypted") }

// --- E7: name service -------------------------------------------------

func benchResolve(b *testing.B, cached bool) {
	b.Helper()
	w, err := gdn.NewWorld(gdn.DefaultTopology())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)
	mod, err := w.Moderator("eu-nl-vu", "bench")
	if err != nil {
		b.Fatal(err)
	}
	const names = 32
	for i := 0; i < names; i++ {
		if _, _, err := mod.CreatePackage(fmt.Sprintf("/apps/p%02d", i), gdn.Scenario{
			Protocol: gdn.ProtocolClientServer, Servers: w.GOSAddrs("eu-nl-vu"),
		}, gdn.Package{Files: map[string][]byte{"f": {1}}}); err != nil {
			b.Fatal(err)
		}
	}
	res := w.DNSResolver("na-ny-cu")
	res.CacheEnabled = cached
	svc := gns.NewNameService(res, w.Zone())
	zipf := workload.NewZipf(names, 0.9, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := svc.Resolve(fmt.Sprintf("/apps/p%02d", zipf.Next())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7_ResolveCached(b *testing.B)   { benchResolve(b, true) }
func BenchmarkE7_ResolveUncached(b *testing.B) { benchResolve(b, false) }

// --- E8: replication protocols ---------------------------------------

func benchProtocolOp(b *testing.B, protocol string, replicas int, write bool) {
	b.Helper()
	w, err := gdn.NewWorld(gdn.DefaultTopology())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)

	allServers := []string{"eu-nl-vu", "na-ca-ucb", "ap-jp-ut"}
	servers := allServers[:replicas]
	mod, err := w.Moderator("eu-nl-vu", "bench")
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := mod.CreatePackage("/apps/bench", gdn.Scenario{
		Protocol: protocol, Servers: w.GOSAddrs(servers...),
	}, gdn.Package{Files: map[string][]byte{"f": make([]byte, 16<<10)}}); err != nil {
		b.Fatal(err)
	}

	stub, _, err := w.BindPackage("na-ny-cu", "/apps/bench")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { stub.Close() })
	part := make([]byte, 16<<10)

	w.Net.ResetMeter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if write {
			part[0] = byte(i)
			if err := stub.AddFile("f", part); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := stub.GetFileContents("f"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(stub.TakeCost().Milliseconds())/float64(b.N), "virtual-ms/op")
	b.ReportMetric(float64(w.Net.Meter().Bytes[netsim.WideArea])/1024/float64(b.N), "wan-KB/op")
}

func BenchmarkE8_ClientServer_Read(b *testing.B) {
	benchProtocolOp(b, gdn.ProtocolClientServer, 1, false)
}
func BenchmarkE8_MasterSlave3_Read(b *testing.B) {
	benchProtocolOp(b, gdn.ProtocolMasterSlave, 3, false)
}
func BenchmarkE8_MasterSlave3_Write(b *testing.B) {
	benchProtocolOp(b, gdn.ProtocolMasterSlave, 3, true)
}
func BenchmarkE8_Active3_Write(b *testing.B) { benchProtocolOp(b, gdn.ProtocolActive, 3, true) }

// --- E9: checkpoint / recovery ----------------------------------------

func BenchmarkE9_CheckpointRecover1MB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.E9Recovery(experiments.E9Config{Sizes: []int{1 << 20}})
		if tab.Rows[0][4] != "yes" {
			b.Fatal("recovery verification failed")
		}
	}
}

// --- E10: admission overhead -------------------------------------------

func benchRemoteRead(b *testing.B, secure bool) {
	b.Helper()
	top := gdn.DefaultTopology()
	top.Secure = secure
	w, err := gdn.NewWorld(top)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)
	mod, err := w.Moderator("eu-nl-vu", "bench")
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := mod.CreatePackage("/apps/bench", gdn.Scenario{
		Protocol: gdn.ProtocolClientServer, Servers: w.GOSAddrs("eu-nl-vu"),
	}, gdn.Package{Files: map[string][]byte{"f": make([]byte, 4<<10)}}); err != nil {
		b.Fatal(err)
	}
	stub, _, err := w.BindPackage("ap-jp-ut", "/apps/bench")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { stub.Close() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stub.GetFileContents("f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_RemoteRead_Open(b *testing.B)    { benchRemoteRead(b, false) }
func BenchmarkE10_RemoteRead_Secured(b *testing.B) { benchRemoteRead(b, true) }

// --- Upload path: streamed deploys and negotiation ---------------------

// BenchmarkUpload_Stream measures raw upload-stream throughput over
// loopback TCP: 256 KiB data frames (the store chunk size) flowing
// client → server under the credit window, against a handler that
// drains them. The deploy-direction mirror of the E5 download numbers.
func BenchmarkUpload_Stream(b *testing.B) {
	var tcp transport.TCP
	srv, err := rpc.Serve(tcp, "127.0.0.1:0", func(c *rpc.Call) ([]byte, error) {
		ur := c.Upload()
		for {
			if _, err := ur.Recv(); err != nil {
				return nil, nil
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	cl := rpc.NewClient(tcp, "", srv.Addr())
	b.Cleanup(func() { cl.Close() })

	const frame = 256 << 10
	const framesPerOp = 64 // 16 MiB per op
	buf := make([]byte, frame)
	b.SetBytes(frame * framesPerOp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		us, err := cl.CallUpload(1, nil)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < framesPerOp; j++ {
			if err := us.Send(buf); err != nil {
				b.Fatal(err)
			}
		}
		if _, _, err := us.CloseAndRecv(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeploy_Redeploy measures the negotiated no-op re-deploy: a
// 16 MiB package whose chunks the object server already holds. Only
// OpChunkHave negotiation frames cross the wire, so the number tracks
// negotiation overhead, not content size.
func BenchmarkDeploy_Redeploy(b *testing.B) {
	w, err := gdn.NewWorld(gdn.DefaultTopology())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)

	staged := pkgobj.New()
	if err := pkgobj.NewStub(core.NewLocalLR(ids.Nil, staged)).UploadFile("blob", make([]byte, 16<<20)); err != nil {
		b.Fatal(err)
	}
	state, err := staged.MarshalState()
	if err != nil {
		b.Fatal(err)
	}
	refs, err := pkgobj.StateRefs(state)
	if err != nil {
		b.Fatal(err)
	}
	cl := gos.NewClient(w.Net, "eu-de-tu", w.GOSAddrs("eu-nl-vu")[0], nil)
	b.Cleanup(func() { cl.Close() })
	// First deploy moves the content; every measured iteration re-runs
	// the full PutChunks and must move none.
	if _, _, err := cl.PutChunks(staged.Store(), refs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, _, err := cl.PutChunks(staged.Store(), refs)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Sent != 0 {
			b.Fatalf("re-deploy uploaded %d chunks", stats.Sent)
		}
	}
}

// BenchmarkDownload_Failover tracks what a dead replica costs the
// download path: a master/slave pair shares one location record, the
// read-preferred slave is crashed, and every measured download must
// route around the corpse — first by failover, then via the failure
// backoff that keeps traffic off it. CI records this next to the
// healthy-path E5 numbers, so a regression in the routing layer's
// failure handling shows up as failover latency per commit.
func BenchmarkDownload_Failover(b *testing.B) {
	w, err := gdn.NewWorld(gdn.Topology{
		Regions: map[string][]string{
			"eu": {"eu-1", "eu-2"},
			"na": {"na-1"},
		},
		SharedRegionLeaves: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)

	const size = 1 << 20
	mod, err := w.Moderator("eu-1", "bench")
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := mod.CreatePackage("/apps/ha", gdn.Scenario{
		Protocol: gdn.ProtocolMasterSlave,
		Servers:  w.GOSAddrs("eu-1", "eu-2"),
	}, gdn.Package{Files: map[string][]byte{"blob": make([]byte, size)}}); err != nil {
		b.Fatal(err)
	}

	h, err := w.HTTPD("na-1", gdn.HTTPDConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(h)
	b.Cleanup(ts.Close)

	// Kill the slave (the preferred read target) before measuring.
	w.Net.SetDown("eu-2", true)

	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(ts.URL + "/pkg/apps/ha/-/blob")
		if err != nil {
			b.Fatal(err)
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || n != size {
			b.Fatalf("status %d, %d bytes", resp.StatusCode, n)
		}
	}
	b.StopTimer()
	if errs := h.Stats().Errors; errs != 0 {
		b.Fatalf("handler served %d errors with a dead replica", errs)
	}
}

// --- Million-object location plane ------------------------------------

// benchMillionWorld deploys a two-level tree (root + one leaf, janitor
// off) and registers `objects` contact addresses at the ROOT node
// through a registration session, batched 4096 per RPC. Storing at the
// root keeps setup linear — a leaf-stored object would also install a
// forwarding-pointer chain (two more RPCs each) — and it is the
// paper's own placement for highly mobile objects (§3.5). Lookups run
// from the leaf, so every one exercises the up-phase tree hop before
// finding the addresses at the root.
func benchMillionWorld(b *testing.B, objects int) (*gls.Tree, *gls.ServerSession, []ids.OID) {
	b.Helper()
	net := netsim.New(nil)
	net.AddSite("hub", "hub", "core")
	net.AddSite("gos", "gos", "eu")
	tree, err := gls.Deploy(net, gls.DomainSpec{
		Name: "root", Sites: []string{"hub"},
		Children: []gls.DomainSpec{gls.Leaf("lan", "gos")},
	}, gls.WithTreeSweep(-1))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(tree.Close)
	rootRes, err := tree.Resolver("gos", "root")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { rootRes.Close() })
	sess, _, err := rootRes.OpenSession("gos:gos-obj", time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	ca := gls.ContactAddress{Protocol: "clientserver", Address: "gos:gos-obj", Impl: pkgobj.Impl, Role: "server"}
	oids := make([]ids.OID, objects)
	for i := range oids {
		oids[i] = ids.New()
	}
	const batch = 4096
	for at := 0; at < len(oids); at += batch {
		end := at + batch
		if end > len(oids) {
			end = len(oids)
		}
		entries := make(map[ids.OID]gls.ContactAddress, end-at)
		for _, oid := range oids[at:end] {
			entries[oid] = ca
		}
		if _, err := sess.AttachBatch(entries); err != nil {
			b.Fatal(err)
		}
	}
	return tree, sess, oids
}

// BenchmarkGLS_Lookup_1M measures single-client lookup latency against
// a directory node holding one million registered objects, reporting
// p50/p99 read from the gdn_gls_resolver_lookup_seconds histogram and
// the renewal p99 from gdn_gls_session_renew_seconds — the 1M-object
// scaling numbers of the ROADMAP control-plane item.
func BenchmarkGLS_Lookup_1M(b *testing.B) {
	tree, sess, oids := benchMillionWorld(b, 1_000_000)
	res, err := tree.Resolver("gos", "lan")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { res.Close() })
	// Setup left ~1M records of freshly allocated heap behind; finish
	// the GC cycle it provoked so the mark phase is not charged to the
	// first few timed lookups.
	runtime.GC()
	lkBefore := gls.LookupLatency()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := res.Lookup(oids[(i*65537)%len(oids)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	lk := gls.LookupLatency().Delta(lkBefore)
	b.ReportMetric(lk.Quantile(0.50)/1e3, "p50-lookup-µs")
	b.ReportMetric(lk.Quantile(0.99)/1e3, "p99-lookup-µs")
	// Renewal stays O(1) in attached entries: one heartbeat covers all
	// million registrations.
	rnBefore := gls.RenewLatency()
	for i := 0; i < 32; i++ {
		if _, err := sess.Renew(); err != nil {
			b.Fatal(err)
		}
	}
	rn := gls.RenewLatency().Delta(rnBefore)
	b.ReportMetric(rn.Quantile(0.99)/1e3, "p99-renew-µs")
}

// BenchmarkGLS_ParallelLookup drives lookups from 16 concurrent
// resolvers against a 100k-object node. With the record table striped
// across 16 shard locks, parallel throughput should scale well past
// the single-resolver rate — seq-ns/op is the sequential baseline
// measured outside the timer, so scaling = seq-ns/op ÷ ns/op.
func BenchmarkGLS_ParallelLookup(b *testing.B) {
	tree, _, oids := benchMillionWorld(b, 100_000)
	const resolvers = 16
	pool := make([]*gls.Resolver, resolvers)
	for i := range pool {
		r, err := tree.Resolver("gos", "lan")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { r.Close() })
		pool[i] = r
	}
	// Sequential baseline for the scaling ratio, outside the timer.
	const probe = 2000
	start := time.Now()
	for i := 0; i < probe; i++ {
		if _, _, err := pool[0].Lookup(oids[(i*65537)%len(oids)]); err != nil {
			b.Fatal(err)
		}
	}
	seqNs := float64(time.Since(start).Nanoseconds()) / probe

	runtime.GC()
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := pool[int(next.Add(1))%resolvers]
		i := int(next.Add(1)) * 131071
		for pb.Next() {
			i++
			if _, _, err := r.Lookup(oids[(i*65537)%len(oids)]); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(seqNs, "seq-ns/op")
}
